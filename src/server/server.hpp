// Long-lived partitioning service (DESIGN.md §9).
//
// Thread anatomy:
//
//   accept thread ── poll(listen fd, stop pipe) ── one thread per connection
//   connection threads ── read frames, admit into the bounded queue,
//                         answer /stats and admission failures inline
//   worker threads ── pop jobs, run RequestHandler, write the response
//
// Admission control: a PartitionRequest either enters the bounded queue or
// is answered OVERLOADED on the spot — the server never buffers unbounded
// work and a full queue never hangs a client.  Each worker owns a
// RequestHandler (warm decode/partition/encode buffers) and they share one
// WorkspacePool and one ResultCache, so concurrency across requests costs
// no per-request allocation on the compute path.
//
// Deadlines: requests carry a millisecond budget anchored at arrival.
// Expiry is checked at dequeue (answered without computing) and during
// partitioning via the CancelToken polled at level boundaries
// (core/multilevel.cpp), releasing the worker promptly either way.
//
// Shutdown: request_stop() writes one byte to a self-pipe (async-signal-
// safe, so it is callable from a SIGTERM handler).  join() then drains:
// stop accepting, half-close every connection (SHUT_RD — queued responses
// still flow out), join connection threads, close the queue (workers finish
// the backlog first), join workers, unlink the socket file.
//
// Determinism: results are a pure function of (graph, k, seed, scheme) —
// never of worker count, queue order, or cache state — because every
// request runs the offline pipeline with its own seed and cache entries are
// keyed by exactly the function's inputs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "server/bounded_queue.hpp"
#include "server/handler.hpp"
#include "server/net.hpp"
#include "server/result_cache.hpp"
#include "support/workspace.hpp"

namespace mgp::server {

struct ServerConfig {
  /// Non-empty: listen on this Unix-domain socket path.
  std::string unix_path;
  /// When unix_path is empty: listen on 127.0.0.1:tcp_port (0 = ephemeral;
  /// read the bound port back with Server::tcp_port()).
  std::uint16_t tcp_port = 0;
  int num_workers = 2;
  std::size_t queue_capacity = 16;
  std::size_t cache_capacity = 64;
  /// Frames above this are rejected before any allocation.
  std::size_t max_payload_bytes = std::size_t{1} << 30;
  /// Requests with kway_mode = kAuto run direct k-way when k >= this
  /// (recursive bisection below); explicit request modes always win.
  int direct_min_k = kDefaultDirectMinK;
  /// Byte budget of the pinned-graph store (PIN_GRAPH / DELTA_REPARTITION);
  /// pins past it evict idle LRU entries, then reject with OVERLOADED.
  std::size_t store_max_bytes = std::size_t{256} << 20;
  /// Test-only: runs in the worker before each dequeued job is handled
  /// (lets tests hold workers to fill the queue or expire deadlines
  /// deterministically).  Empty in production.
  std::function<void()> test_on_dequeue;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the worker + accept threads.
  bool start(std::string& err);

  /// Signals shutdown.  Async-signal-safe (one write to a self-pipe plus a
  /// lock-free store); callable from a SIGTERM/SIGINT handler.
  void request_stop();

  /// Blocks until request_stop(), then drains and stops every thread.
  void join();

  /// Bound TCP port (0 for Unix-domain servers).
  std::uint16_t tcp_port() const { return bound_port_; }

  /// Introspection snapshot (the /stats payload): metrics, cache, queue.
  std::string stats_json() const;

  obs::MetricsRegistry& metrics() { return registry_; }
  const ResultCache& cache() const { return cache_; }

  /// Connection slots currently tracked: live connections plus finished
  /// threads not yet reaped.  Test hook for the reaping logic — a long-
  /// lived server churning short connections must keep this bounded.
  std::size_t connection_slots() const;

 private:
  struct Connection {
    explicit Connection(Fd f) : fd(std::move(f)) {}
    Fd fd;
    std::mutex write_mu;  ///< serializes response frames onto the socket
  };
  struct Job {
    std::shared_ptr<Connection> conn;
    std::vector<std::uint8_t> payload;
    std::chrono::steady_clock::time_point arrival;
    MsgType type = MsgType::kPartitionRequest;
  };

  /// One tracked connection: its thread plus a weak handle for the drain
  /// half-close.  Slots live in conns_ until the thread finishes and a
  /// later accept (or join()) reaps it.
  struct ConnSlot {
    std::thread thread;
    std::weak_ptr<Connection> conn;
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  /// Joins and erases every connection whose thread has announced itself
  /// finished.  Called from the accept loop on each new connection, so a
  /// daemon serving many short connections never accumulates dead thread
  /// handles (only the final tail waits for join()).
  void reap_finished_connections();
  void write_inline_error(Connection& conn, Status status, std::string_view message,
                          std::vector<std::uint8_t>& scratch);
  void write_stats(Connection& conn, std::vector<std::uint8_t>& scratch);

  ServerConfig cfg_;
  obs::MetricsRegistry registry_;
  ServerMetrics ids_;
  WorkspacePool wpool_;
  ResultCache cache_;
  dynamic::GraphStore store_;
  BoundedQueue<Job> queue_;

  Fd listen_fd_;
  Fd stop_pipe_rd_, stop_pipe_wr_;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool joined_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  mutable std::mutex conns_mu_;
  std::uint64_t next_conn_id_ = 0;
  std::unordered_map<std::uint64_t, ConnSlot> conns_;
  /// Ids whose connection_loop has returned; their threads are join-ready.
  std::vector<std::uint64_t> finished_conns_;
};

}  // namespace mgp::server
