// Bounded MPMC queue: the server's admission-control point.
//
// Fixed-capacity ring buffer under one mutex.  Producers never block:
// try_push fails when the ring is full, and the caller turns that into an
// OVERLOADED response — backpressure surfaces at the protocol layer instead
// of as unbounded memory growth or a hung client.  Consumers block in pop()
// until an item or close(); after close() the remaining items still drain
// (pop returns them before signalling end-of-stream), which is what lets
// shutdown finish queued work before the workers exit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace mgp::server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity > 0 ? capacity : 1), capacity_(capacity > 0 ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// False when full or closed (never blocks).
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ == capacity_) return false;
      ring_[(head_ + size_) % capacity_] = std::move(item);
      ++size_;
    }
    ready_.notify_one();
    return true;
  }

  /// Next item, blocking while the queue is empty and open.  nullopt once
  /// the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return item;
  }

  /// Rejects future pushes and wakes blocked consumers.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::vector<T> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace mgp::server
