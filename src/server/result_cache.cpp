#include "server/result_cache.hpp"

#include <algorithm>

namespace mgp::server {

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool ResultCache::lookup(const CacheKey& key, std::vector<part_t>& part_out,
                         ewt_t& cut_out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency, no realloc
  const Entry& e = *it->second;
  part_out.assign(e.part.begin(), e.part.end());
  cut_out = e.cut;
  ++stats_.hits;
  return true;
}

void ResultCache::insert(const CacheKey& key, std::span<const part_t> part,
                         ewt_t cut) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic pipeline: a re-insert carries the same bytes, so only
    // recency needs refreshing.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    // Recycle the LRU entry in place: its list node, labelling capacity,
    // and hash-map node all become the new entry's (extract/insert reuses
    // the map node and cannot rehash at constant size), so steady-state
    // insertion is splice + rekey + copy — no heap traffic.
    auto last = std::prev(lru_.end());
    auto node = index_.extract(last->key);
    lru_.splice(lru_.begin(), lru_, last);
    ++stats_.evictions;
    Entry& e = lru_.front();
    e.key = key;
    e.part.assign(part.begin(), part.end());
    e.cut = cut;
    node.key() = key;
    node.mapped() = lru_.begin();
    index_.insert(std::move(node));
  } else {
    lru_.emplace_front();
    Entry& e = lru_.front();
    e.key = key;
    e.part.assign(part.begin(), part.end());
    e.cut = cut;
    index_[key] = lru_.begin();
  }
  ++stats_.insertions;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace mgp::server
