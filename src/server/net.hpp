// Thin POSIX socket layer for the partitioning service.
//
// Wraps exactly what the server and client need — RAII file descriptors,
// Unix-domain and loopback-TCP listen/connect, retrying whole-buffer
// send/recv, and framed I/O on top of server/protocol.hpp — so the rest of
// src/server/ never touches errno or raw syscalls.  Writes use MSG_NOSIGNAL
// (a peer that vanished surfaces as an error return, never SIGPIPE) and
// every call retries EINTR.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.hpp"

namespace mgp::server {

/// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();  ///< closes (EINTR-safe) and clears

 private:
  int fd_ = -1;
};

/// Listening Unix-domain socket at `path` (unlinked first if stale).
/// Invalid Fd + `err` on failure.
Fd listen_unix(const std::string& path, std::string& err);

/// Listening TCP socket on 127.0.0.1:`port` (0 = ephemeral).
Fd listen_tcp(std::uint16_t port, std::string& err);

/// The locally-bound TCP port of a socket (resolves ephemeral binds).
std::uint16_t local_port(int fd);

Fd connect_unix(const std::string& path, std::string& err);
Fd connect_tcp(const std::string& host, std::uint16_t port, std::string& err);

/// Sends the whole buffer.  False on any unrecoverable error.
bool send_all(int fd, const void* data, std::size_t len);

/// Receives exactly `len` bytes.  False on EOF or error.
bool recv_all(int fd, void* data, std::size_t len);

enum class ReadFrameResult {
  kOk,
  kEof,       ///< clean close before a header arrived
  kError,     ///< transport error (mid-frame EOF included)
  kBadFrame,  ///< bad magic or payload above the caller's limit
};

/// Reads one frame: header into `header`, payload into `payload` (resized;
/// capacity reused across calls).  Frames above `max_payload` poison the
/// stream (no resync is attempted) and return kBadFrame.
ReadFrameResult read_frame(int fd, FrameHeader& header,
                           std::vector<std::uint8_t>& payload,
                           std::size_t max_payload);

/// Writes header + payload as one frame.
bool write_frame(int fd, MsgType type, std::span<const std::uint8_t> payload);

}  // namespace mgp::server
