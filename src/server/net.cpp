#include "server/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mgp::server {
namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    // POSIX leaves the descriptor state unspecified on EINTR from close;
    // retrying risks closing a recycled fd, so close once and move on.
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_unix(const std::string& path, std::string& err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    err = "unix socket path too long: " + path;
    return Fd();
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    err = errno_message("socket(AF_UNIX)");
    return Fd();
  }
  ::unlink(path.c_str());  // a stale socket file would make bind fail
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    err = errno_message("bind");
    return Fd();
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    err = errno_message("listen");
    return Fd();
  }
  return fd;
}

Fd listen_tcp(std::uint16_t port, std::string& err) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    err = errno_message("socket(AF_INET)");
    return Fd();
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    err = errno_message("bind");
    return Fd();
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    err = errno_message("listen");
    return Fd();
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

Fd connect_unix(const std::string& path, std::string& err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    err = "unix socket path too long: " + path;
    return Fd();
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    err = errno_message("socket(AF_UNIX)");
    return Fd();
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    err = errno_message("connect");
    return Fd();
  }
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port, std::string& err) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    err = "not an IPv4 address: " + host;
    return Fd();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    err = errno_message("socket(AF_INET)");
    return Fd();
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    err = errno_message("connect");
    return Fd();
  }
  return fd;
}

bool send_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t sent = ::send(fd, p, len, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    len -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool recv_all(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t got = ::recv(fd, p, len, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF mid-buffer
    p += got;
    len -= static_cast<std::size_t>(got);
  }
  return true;
}

ReadFrameResult read_frame(int fd, FrameHeader& header,
                           std::vector<std::uint8_t>& payload,
                           std::size_t max_payload) {
  std::uint8_t head[kFrameHeaderBytes];
  // Distinguish a clean close (EOF before any header byte) from a torn one.
  ssize_t first;
  do {
    first = ::recv(fd, head, sizeof(head), 0);
  } while (first < 0 && errno == EINTR);
  if (first == 0) return ReadFrameResult::kEof;
  if (first < 0) return ReadFrameResult::kError;
  if (static_cast<std::size_t>(first) < sizeof(head) &&
      !recv_all(fd, head + first, sizeof(head) - static_cast<std::size_t>(first))) {
    return ReadFrameResult::kError;
  }
  if (!decode_frame_header(head, header)) return ReadFrameResult::kBadFrame;
  if (header.payload_len > max_payload) return ReadFrameResult::kBadFrame;
  payload.resize(header.payload_len);
  if (header.payload_len > 0 && !recv_all(fd, payload.data(), payload.size())) {
    return ReadFrameResult::kError;
  }
  return ReadFrameResult::kOk;
}

bool write_frame(int fd, MsgType type, std::span<const std::uint8_t> payload) {
  FrameHeader h;
  h.type = type;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t head[kFrameHeaderBytes];
  encode_frame_header(h, head);
  if (!send_all(fd, head, sizeof(head))) return false;
  return payload.empty() || send_all(fd, payload.data(), payload.size());
}

}  // namespace mgp::server
