// Wire protocol of the partitioning service (DESIGN.md §9).
//
// Length-prefixed binary frames over a stream socket, little-endian
// throughout, no external serialization dependency.  Every frame is a
// 12-byte header followed by `payload_len` payload bytes:
//
//   offset  size  field
//        0     4  magic        0x3150474D ("MGP1")
//        4     1  version      kProtocolVersion
//        5     1  type         MsgType
//        6     2  reserved     0
//        8     4  payload_len  bytes that follow
//
// A PartitionRequest payload is a fixed 44-byte head followed by the CSR
// arrays of the graph:
//
//   offset  size      field
//        0     4      k            number of parts (u32)
//        4     8      seed         RNG seed (u64)
//       12     1      matching     coarsening scheme byte: 0..3 =
//                                  MatchingScheme under the default
//                                  strategy, 4 = algebraic-distance HEM,
//                                  5 = n-level (coarsen/strategy.hpp);
//                                  anything above is BAD_REQUEST
//       13     1      initpart     InitPartScheme as u8
//       14     1      refine       RefinePolicy as u8
//       15     1      kway_mode    KwayMode as u8 (0 auto / 1 rb / 2 direct;
//                                  was reserved-zero, so old clients send
//                                  kAuto and old servers already digested
//                                  the byte — no version bump needed)
//       16     4      coarsen_to   coarsening threshold (u32)
//       20     8      deadline_ms  per-request budget; 0 = none, at most
//                                  kMaxDeadlineMs (u64)
//       28     8      n            vertices (u64)
//       36     8      arcs         adjacency slots = xadj[n] (u64)
//       44  8(n+1)    xadj         u64 each
//        +  4*arcs    adjncy       u32 each
//        +    8*n     vwgt         i64 each
//        +  8*arcs    adjwgt       i64 each
//
// Cache identity: the graph fingerprint is FNV-1a over bytes [28, end) —
// the n/arcs head plus all four arrays — and the config digest is FNV-1a
// over bytes [0, 20).  The deadline sits between the two regions exactly so
// it never reaches the cache key: the same (graph, k, seed, scheme) hits
// the cache regardless of the caller's latency budget.  The key also pins
// the exact n and k, so even a colliding payload can never be served a
// partition with the wrong label count or part count.  FNV-1a is not
// collision-resistant, however: clients sharing one server are assumed to
// be mutually trusted (a client able to engineer a full 128-bit collision
// could poison the cache for the others).  Deployments with untrusted
// tenants should run one server instance per tenant.
//
// Versioning: bumping any layout bumps kProtocolVersion; a server answers a
// frame with an unknown version with kUnsupportedVersion and keeps the
// connection usable (the header is version-independent by construction).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "dynamic/delta.hpp"
#include "graph/csr.hpp"

namespace mgp::server {

inline constexpr std::uint32_t kMagic = 0x3150474DU;  // "MGP1"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr std::size_t kRequestHeadBytes = 44;
/// Bytes [0, kConfigDigestBytes) of a request are the config-digest region.
inline constexpr std::size_t kConfigDigestBytes = 20;
/// The graph fingerprint covers bytes [kGraphRegionOffset, payload end).
inline constexpr std::size_t kGraphRegionOffset = 28;
/// Largest accepted deadline_ms (24 h).  A cap keeps the arrival +
/// milliseconds arithmetic far away from chrono's int64 overflow; anything
/// above it is a client bug and is answered kBadRequest.
inline constexpr std::uint64_t kMaxDeadlineMs = 24ull * 60 * 60 * 1000;

enum class MsgType : std::uint8_t {
  kPartitionRequest = 1,
  kStatsRequest = 2,
  kPartitionResponse = 3,
  kStatsResponse = 4,
  kErrorResponse = 5,
  kPinGraphRequest = 6,   ///< pin a graph in the server's GraphStore
  kDeltaRequest = 7,      ///< repartition a pinned graph after a delta
  kPinGraphResponse = 8,
  kDeltaResponse = 9,
};

/// Result codes carried by ErrorResponse frames (and client outcomes).
enum class Status : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,          ///< malformed payload, bad enum, invalid graph
  kUnsupportedVersion = 2,  ///< frame version != kProtocolVersion
  kOverloaded = 3,          ///< admission queue full; retry later
  kDeadlineExceeded = 4,    ///< budget expired (queued or mid-partition)
  kShuttingDown = 5,        ///< server draining; connection closing
  kInternal = 6,            ///< unexpected server-side failure
  kNotFound = 7,            ///< DELTA references a fingerprint that is not
                            ///< pinned (never pinned, evicted, or re-keyed
                            ///< by a concurrent delta) — re-PIN and retry
};

std::string_view to_string(Status s);

/// How the server turns a request into k parts.  Sits inside the config
/// digest region, so the cache never serves a partition computed under a
/// different mode.
enum class KwayMode : std::uint8_t {
  kAuto = 0,                ///< server decides (direct for k >= its threshold)
  kRecursiveBisection = 1,  ///< force the paper's recursive bisection
  kDirect = 2,              ///< force direct k-way (core/kway_direct)
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kErrorResponse;
  std::uint32_t payload_len = 0;
};

/// Serializes `h` into 12 bytes at `out` (caller sizes the buffer).
void encode_frame_header(const FrameHeader& h, std::uint8_t* out);
/// Parses 12 bytes.  False iff the magic does not match (other fields are
/// reported as-is for the caller to judge).
bool decode_frame_header(std::span<const std::uint8_t> bytes, FrameHeader& out);

/// Fixed head of a PartitionRequest (everything before the CSR arrays).
struct RequestHead {
  std::uint32_t k = 2;
  std::uint64_t seed = 0;
  std::uint8_t matching = 0;
  std::uint8_t initpart = 0;
  std::uint8_t refine = 0;
  std::uint8_t kway_mode = 0;  ///< KwayMode
  std::uint32_t coarsen_to = 100;
  std::uint64_t deadline_ms = 0;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
};

/// Parses and validates the head: sizes coherent with the payload length,
/// enums in range, k >= 1.  On failure returns kBadRequest and fills `err`.
Status decode_request_head(std::span<const std::uint8_t> payload, RequestHead& out,
                           std::string& err);

/// Decodes the CSR arrays into `g`, recycling g's storage (zero allocation
/// once capacities have warmed).  Validates xadj monotonicity/consistency,
/// endpoint ranges, non-negative vertex weights, and positive edge weights;
/// symmetry is the client's contract (checking it would cost O(E log d) per
/// request).  On failure returns kBadRequest, fills `err`, leaves g empty.
Status decode_request_graph(std::span<const std::uint8_t> payload,
                            const RequestHead& head, Graph& g, std::string& err);

/// Maps a validated head onto the pipeline configuration (threads = 1: the
/// server parallelizes across requests, not inside one).
MultilevelConfig config_from_head(const RequestHead& head);

/// Builds a full PartitionRequest payload (head + CSR arrays) into `out`
/// (cleared first; capacity reused).
struct RequestOptions {
  part_t k = 2;
  std::uint64_t seed = 1995;  ///< the CLI's default seed (examples/)
  /// Coarsening: `coarsen_strategy` picks the engine; `matching` only
  /// applies under CoarsenStrategy::kMatching.  The pair is encoded as the
  /// single wire scheme byte (scheme_byte / scheme_from_byte).
  CoarsenStrategy coarsen_strategy = CoarsenStrategy::kMatching;
  MatchingScheme matching = MatchingScheme::kHeavyEdge;
  InitPartScheme initpart = InitPartScheme::kGGGP;
  RefinePolicy refine = RefinePolicy::kBKLGR;
  KwayMode kway_mode = KwayMode::kAuto;
  vid_t coarsen_to = 100;
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline
};
void encode_partition_request(const Graph& g, const RequestOptions& opts,
                              std::vector<std::uint8_t>& out);

/// PartitionResponse payload: u32 k, i64 edge_cut, u8 cache_hit, 3 reserved
/// bytes, u64 n, then u32 per vertex label.
void encode_partition_response(std::span<const part_t> part, part_t k, ewt_t edge_cut,
                               bool cache_hit, std::vector<std::uint8_t>& out);
struct PartitionResponseView {
  part_t k = 0;
  ewt_t edge_cut = 0;
  bool cache_hit = false;
  std::uint64_t n = 0;
  std::span<const std::uint8_t> labels;  ///< u32 little-endian each
};
bool decode_partition_response(std::span<const std::uint8_t> payload,
                               PartitionResponseView& out);

/// ErrorResponse payload: u8 status, 3 reserved bytes, u32 length, message.
void encode_error_response(Status status, std::string_view message,
                           std::vector<std::uint8_t>& out);
/// A complete ErrorResponse *frame* (header + payload) into `out` (cleared
/// first; capacity reused).
void encode_error_frame(Status status, std::string_view message,
                        std::vector<std::uint8_t>& out);
bool decode_error_response(std::span<const std::uint8_t> payload, Status& status,
                           std::string& message);

/// StatsResponse payload: u32 length, JSON bytes.
void encode_stats_response(std::string_view json, std::vector<std::uint8_t>& out);
bool decode_stats_response(std::span<const std::uint8_t> payload, std::string& json);

// ---------------------------------------------------------------------------
// Incremental repartitioning (DESIGN.md §11).
//
// A PIN_GRAPH payload is *exactly* the graph region of a PartitionRequest —
// u64 n, u64 arcs, then the four CSR arrays — so the pin fingerprint
// (FNV-1a over the whole payload) equals the graph_fp that a
// PartitionRequest carrying the same graph would be cache-keyed under.
//
// A DELTA_REPARTITION payload is a fixed 76-byte head followed by the op
// arrays:
//
//   offset  size  field
//        0    20  identical layout and semantics to a PartitionRequest's
//                 config-digest region (k, seed, matching, initpart,
//                 refine, kway_mode, coarsen_to) — FNV-1a over these bytes
//                 is the digest that keys the warm-start labelling
//       20     8  deadline_ms (outside the digest, as in PartitionRequest)
//       28     8  fingerprint of the *pre-delta* pinned graph (u64)
//       36     8  edge-insert count (u64)      — then counts for the rest:
//       44     8  edge-delete count
//       52     8  vertex-add count
//       60     8  vertex-remove count
//       68     8  weight-update count
//       76  16*a  edge inserts   (u32 u, u32 v, u64 w)
//        +   8*b  edge deletes   (u32 u, u32 v)
//        +   8*c  vertex adds    (u64 w)
//        +   4*d  vertex removes (u32 v)
//        +  12*e  weight updates (u32 v, u64 w)
// ---------------------------------------------------------------------------

inline constexpr std::size_t kPinHeadBytes = 16;
inline constexpr std::size_t kDeltaHeadBytes = 76;

/// Builds a PIN_GRAPH payload (the graph region encoding) into `out`.
void encode_pin_request(const Graph& g, std::vector<std::uint8_t>& out);
/// Validates a PIN_GRAPH payload's dimensions (fills only out.n/out.arcs).
Status decode_pin_request(std::span<const std::uint8_t> payload,
                          RequestHead& out, std::string& err);
/// Decodes the pinned CSR (same validation as decode_request_graph).
Status decode_pin_graph(std::span<const std::uint8_t> payload,
                        const RequestHead& head, Graph& g, std::string& err);

/// PinGraphResponse payload: u64 fingerprint, u64 n, u64 arcs,
/// u8 already_pinned, 7 reserved bytes.
struct PinResponseView {
  std::uint64_t fingerprint = 0;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  bool already_pinned = false;
};
void encode_pin_response(std::uint64_t fingerprint, std::uint64_t n,
                         std::uint64_t arcs, bool already_pinned,
                         std::vector<std::uint8_t>& out);
bool decode_pin_response(std::span<const std::uint8_t> payload,
                         PinResponseView& out);

/// Fixed head of a DELTA_REPARTITION request (layout above).
struct DeltaHead {
  std::uint32_t k = 2;
  std::uint64_t seed = 0;
  std::uint8_t matching = 0;
  std::uint8_t initpart = 0;
  std::uint8_t refine = 0;
  std::uint8_t kway_mode = 0;
  std::uint32_t coarsen_to = 100;
  std::uint64_t deadline_ms = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t n_edge_ins = 0;
  std::uint64_t n_edge_del = 0;
  std::uint64_t n_vertex_add = 0;
  std::uint64_t n_vertex_rem = 0;
  std::uint64_t n_weight_upd = 0;
};

/// Parses and validates the delta head: enums in range, op counts bounded
/// by what the payload can carry (before any length arithmetic, mirroring
/// decode_request_head's wrap hardening), exact total length.
Status decode_delta_head(std::span<const std::uint8_t> payload, DeltaHead& out,
                         std::string& err);
/// Decodes the op arrays into `out` (cleared first; capacities reused, so a
/// warm batch decodes with zero allocations).  Ids are validated to fit
/// vid_t here; graph-semantic validation happens in dynamic::apply_delta.
Status decode_delta_ops(std::span<const std::uint8_t> payload,
                        const DeltaHead& head, dynamic::DeltaBatch& out,
                        std::string& err);
/// Builds a DELTA_REPARTITION payload.  opts.kway_mode participates in the
/// digest but the dynamic path always computes direct k-way.
void encode_delta_request(std::uint64_t fingerprint,
                          const dynamic::DeltaBatch& batch,
                          const RequestOptions& opts,
                          std::vector<std::uint8_t>& out);
/// Pipeline configuration for a delta request (threads = 1, as always).
MultilevelConfig config_from_head(const DeltaHead& head);

/// DeltaResponse payload: u64 post-delta fingerprint, u8 from_scratch,
/// u8 reason (RepartitionResult::Reason), u16 reserved, then a
/// PartitionResponse body (u32 k, i64 cut, u8 cache_hit, ..., labels).
struct DeltaResponseView {
  std::uint64_t fingerprint = 0;
  bool from_scratch = false;
  std::uint8_t reason = 0;
  PartitionResponseView body;
};
void encode_delta_response(std::uint64_t fingerprint, bool from_scratch,
                           std::uint8_t reason, std::span<const part_t> part,
                           part_t k, ewt_t edge_cut, bool cache_hit,
                           std::vector<std::uint8_t>& out);
bool decode_delta_response(std::span<const std::uint8_t> payload,
                           DeltaResponseView& out);

/// FNV-1a 64-bit over `bytes`.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

/// Cache identity of a request payload (see the layout comment above).
/// Besides the two digests it carries the exact vertex and part counts, so
/// a fingerprint collision can never hand a requester a labelling of the
/// wrong size or part count (see the trust note in the header comment).
struct CacheKey {
  std::uint64_t graph_fp = 0;
  std::uint64_t config_digest = 0;
  std::uint64_t n = 0;   ///< declared vertex count, matched exactly
  std::uint32_t k = 0;   ///< requested part count, matched exactly
  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};
CacheKey cache_key_of(std::span<const std::uint8_t> payload);

}  // namespace mgp::server
