// Per-worker request handling: decode → cache → partition → encode.
//
// One RequestHandler belongs to one worker thread and owns every buffer a
// request needs — the decoded graph (CSR storage recycled request to
// request), the recursion scratch of kway_partition_into, the labelling,
// and the outgoing frame.  After the first few requests have warmed those
// capacities, handling a request of no-larger size performs zero heap
// allocations on the compute path (asserted by tests/server/
// server_alloc_test.cpp); the shared WorkspacePool supplies the bisection
// workspace the same way it does for the offline driver.
//
// Determinism: the handler runs the exact offline pipeline (same config
// mapping, same single root-seed draw), so a response's bytes equal the
// offline CLI's for the same (graph, k, seed, config) — regardless of which
// worker ran it, what the cache held, or how requests interleaved.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/kway.hpp"
#include "core/kway_direct.hpp"
#include "dynamic/graph_store.hpp"
#include "dynamic/incremental.hpp"
#include "obs/metrics.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"
#include "support/workspace.hpp"

namespace mgp::server {

/// Pre-registered server metrics (hot paths never intern names).
struct ServerMetrics {
  obs::MetricsRegistry::Id requests_total;      ///< counter: partition requests seen
  obs::MetricsRegistry::Id responses_ok;        ///< counter: successful partitions
  obs::MetricsRegistry::Id cache_hits;          ///< counter
  obs::MetricsRegistry::Id cache_misses;        ///< counter
  obs::MetricsRegistry::Id rejected_overloaded; ///< counter: queue-full rejects
  obs::MetricsRegistry::Id deadline_expired;    ///< counter: budget ran out
  obs::MetricsRegistry::Id bad_requests;        ///< counter: malformed payloads
  obs::MetricsRegistry::Id connections_total;   ///< counter: accepted sockets
  obs::MetricsRegistry::Id queue_depth_peak;    ///< max gauge: admission queue
  obs::MetricsRegistry::Id pins_total;          ///< counter: PIN_GRAPH served
  obs::MetricsRegistry::Id deltas_total;        ///< counter: DELTA_REPARTITION seen
  obs::MetricsRegistry::Id delta_fallbacks;     ///< counter: deltas recomputed
                                                ///< from scratch
  obs::MetricsRegistry::Id delta_not_found;     ///< counter: unknown fingerprints
  explicit ServerMetrics(obs::MetricsRegistry& reg);
};

/// Requests with kway_mode = kAuto use direct k-way once k reaches this
/// many parts (recursive bisection below it); see ServerConfig::direct_min_k.
inline constexpr int kDefaultDirectMinK = 64;

class RequestHandler {
 public:
  RequestHandler(WorkspacePool& pool, ResultCache& cache, obs::MetricsRegistry& reg,
                 const ServerMetrics& ids, int direct_min_k = kDefaultDirectMinK,
                 dynamic::GraphStore* store = nullptr);

  RequestHandler(const RequestHandler&) = delete;
  RequestHandler& operator=(const RequestHandler&) = delete;

  /// Handles one PartitionRequest payload and writes a complete response
  /// frame (header + payload) into `frame_out`.  `arrival` anchors the
  /// request's deadline_ms budget; a request that expired while queued is
  /// answered DEADLINE_EXCEEDED without touching the pipeline.
  void handle(std::span<const std::uint8_t> payload,
              std::chrono::steady_clock::time_point arrival,
              std::vector<std::uint8_t>& frame_out);

  /// Handles a PIN_GRAPH payload: validates, decodes, admits the graph to
  /// the GraphStore (OVERLOADED when the byte budget cannot take it).
  void handle_pin(std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>& frame_out);

  /// Handles a DELTA_REPARTITION payload against a pinned graph: patch the
  /// CSR, warm-start (or fall back), re-key the entry to the post-delta
  /// fingerprint.  NOT_FOUND when the fingerprint is unknown or was re-keyed
  /// by a concurrent delta; warm deltas are allocation-free end to end.
  void handle_delta(std::span<const std::uint8_t> payload,
                    std::chrono::steady_clock::time_point arrival,
                    std::vector<std::uint8_t>& frame_out);

 private:
  void write_error_frame(Status status, std::string_view message,
                         std::vector<std::uint8_t>& frame_out);
  void write_response_frame(part_t k, bool cache_hit,
                            std::vector<std::uint8_t>& frame_out);
  /// Wraps body_ in a frame of the given type.
  void write_body_frame(MsgType type, std::vector<std::uint8_t>& frame_out);

  WorkspacePool& pool_;
  ResultCache& cache_;
  obs::MetricsRegistry& reg_;
  const ServerMetrics& ids_;
  int direct_min_k_;
  dynamic::GraphStore* store_;  ///< null = PIN/DELTA answered INTERNAL

  // Warm per-worker state (the zero-allocation steady state).
  Graph graph_;
  KwayScratch scratch_;
  KwayDirectWorkspace direct_ws_;
  std::vector<part_t> part_;
  ewt_t cut_ = 0;
  std::vector<std::uint8_t> body_;  ///< response payload scratch
  CancelToken cancel_;
  std::string err_;
  // Dynamic-path warm state.
  Graph pin_graph_;               ///< PIN decode target
  dynamic::DeltaBatch batch_;     ///< DELTA op decode target
  dynamic::DeltaApplyResult apply_;
  dynamic::IncrementalWorkspace inc_ws_;
};

}  // namespace mgp::server
