#include "server/protocol.hpp"

#include <cstring>
#include <limits>

namespace mgp::server {
namespace {

// Little-endian scalar access.  memcpy keeps it alignment-safe; the
// byte-order fixups compile away on little-endian targets.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "OK";
    case Status::kBadRequest:
      return "BAD_REQUEST";
    case Status::kUnsupportedVersion:
      return "UNSUPPORTED_VERSION";
    case Status::kOverloaded:
      return "OVERLOADED";
    case Status::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case Status::kShuttingDown:
      return "SHUTTING_DOWN";
    case Status::kInternal:
      return "INTERNAL";
    case Status::kNotFound:
      return "NOT_FOUND";
  }
  return "UNKNOWN";
}

void encode_frame_header(const FrameHeader& h, std::uint8_t* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(h.magic >> (8 * i));
  out[4] = h.version;
  out[5] = static_cast<std::uint8_t>(h.type);
  out[6] = 0;
  out[7] = 0;
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<std::uint8_t>(h.payload_len >> (8 * i));
  }
}

bool decode_frame_header(std::span<const std::uint8_t> bytes, FrameHeader& out) {
  if (bytes.size() < kFrameHeaderBytes) return false;
  out.magic = get_u32(bytes.data());
  out.version = bytes[4];
  out.type = static_cast<MsgType>(bytes[5]);
  out.payload_len = get_u32(bytes.data() + 8);
  return out.magic == kMagic;
}

Status decode_request_head(std::span<const std::uint8_t> payload, RequestHead& out,
                           std::string& err) {
  if (payload.size() < kRequestHeadBytes) {
    err = "request payload shorter than the fixed head";
    return Status::kBadRequest;
  }
  const std::uint8_t* p = payload.data();
  out.k = get_u32(p);
  out.seed = get_u64(p + 4);
  out.matching = p[12];
  out.initpart = p[13];
  out.refine = p[14];
  out.kway_mode = p[15];
  out.coarsen_to = get_u32(p + 16);
  out.deadline_ms = get_u64(p + 20);
  out.n = get_u64(p + 28);
  out.arcs = get_u64(p + 36);

  if (out.k < 1) {
    err = "k must be >= 1";
    return Status::kBadRequest;
  }
  if (out.k > static_cast<std::uint32_t>(std::numeric_limits<part_t>::max())) {
    err = "k out of range";
    return Status::kBadRequest;
  }
  if (out.matching > kSchemeByteMax) {
    err = "unknown coarsening scheme";
    return Status::kBadRequest;
  }
  if (out.initpart > static_cast<std::uint8_t>(InitPartScheme::kSpectral)) {
    err = "unknown initial-partitioning scheme";
    return Status::kBadRequest;
  }
  if (out.refine > static_cast<std::uint8_t>(RefinePolicy::kBKLGR)) {
    err = "unknown refinement policy";
    return Status::kBadRequest;
  }
  if (out.kway_mode > static_cast<std::uint8_t>(KwayMode::kDirect)) {
    err = "unknown kway mode";
    return Status::kBadRequest;
  }
  if (out.n > static_cast<std::uint64_t>(std::numeric_limits<vid_t>::max())) {
    err = "vertex count exceeds vid_t";
    return Status::kBadRequest;
  }
  if (out.coarsen_to < 1 ||
      out.coarsen_to > static_cast<std::uint32_t>(std::numeric_limits<vid_t>::max())) {
    err = "coarsen_to out of range";
    return Status::kBadRequest;
  }
  if (out.deadline_ms > kMaxDeadlineMs) {
    err = "deadline_ms above the accepted ceiling";
    return Status::kBadRequest;
  }
  // Bound n and arcs by what the payload could possibly carry *before* any
  // size arithmetic: a vertex costs 16 payload bytes (xadj + vwgt), an arc
  // 12 (adjncy + adjwgt).  Unbounded u64 dimensions would let the expected-
  // length products below wrap mod 2^64 (e.g. arcs = 2^62 makes 12*arcs
  // vanish), sneaking an absurd resize past the exact-length check.
  const std::uint64_t budget = payload.size() - kRequestHeadBytes;
  if (out.n > budget / 16 || out.arcs > budget / 12) {
    err = "declared graph dimensions exceed the payload length";
    return Status::kBadRequest;
  }
  const std::uint64_t expect = kRequestHeadBytes + 8 * (out.n + 1) + 4 * out.arcs +
                               8 * out.n + 8 * out.arcs;
  if (payload.size() != expect) {
    err = "payload length does not match the declared graph dimensions";
    return Status::kBadRequest;
  }
  return Status::kOk;
}

namespace {

/// Shared CSR-array decoder: `p` points at the xadj array of a payload
/// whose declared dimensions have already been length-validated.
Status decode_graph_arrays(const std::uint8_t* p, std::uint64_t decl_n,
                           std::uint64_t decl_arcs, Graph& g,
                           std::string& err) {
  const std::size_t n = static_cast<std::size_t>(decl_n);
  const std::size_t arcs = static_cast<std::size_t>(decl_arcs);

  Graph::Storage st = g.take_storage();
  st.xadj.resize(n + 1);
  st.adjncy.resize(arcs);
  st.vwgt.resize(n);
  st.adjwgt.resize(arcs);

  for (std::size_t i = 0; i <= n; ++i, p += 8) {
    const std::uint64_t x = get_u64(p);
    if (x > decl_arcs) {
      err = "xadj entry exceeds the arc count";
      return Status::kBadRequest;
    }
    st.xadj[i] = static_cast<eid_t>(x);
    if (i > 0 && st.xadj[i] < st.xadj[i - 1]) {
      err = "xadj not non-decreasing";
      return Status::kBadRequest;
    }
  }
  if (st.xadj[0] != 0 || static_cast<std::uint64_t>(st.xadj[n]) != decl_arcs) {
    err = "xadj endpoints inconsistent with the arc count";
    return Status::kBadRequest;
  }
  for (std::size_t i = 0; i < arcs; ++i, p += 4) {
    const std::uint32_t v = get_u32(p);
    if (v >= decl_n) {
      err = "adjacency endpoint out of range";
      return Status::kBadRequest;
    }
    st.adjncy[i] = static_cast<vid_t>(v);
  }
  for (std::size_t i = 0; i < n; ++i, p += 8) {
    const auto w = static_cast<vwt_t>(get_u64(p));
    if (w < 0) {
      err = "negative vertex weight";
      return Status::kBadRequest;
    }
    st.vwgt[i] = w;
  }
  for (std::size_t i = 0; i < arcs; ++i, p += 8) {
    const auto w = static_cast<ewt_t>(get_u64(p));
    if (w <= 0) {
      err = "edge weight must be positive";
      return Status::kBadRequest;
    }
    st.adjwgt[i] = w;
  }
  g = Graph(std::move(st.xadj), std::move(st.adjncy), std::move(st.vwgt),
            std::move(st.adjwgt));
  return Status::kOk;
}

}  // namespace

Status decode_request_graph(std::span<const std::uint8_t> payload,
                            const RequestHead& head, Graph& g,
                            std::string& err) {
  return decode_graph_arrays(payload.data() + kRequestHeadBytes, head.n,
                             head.arcs, g, err);
}

Status decode_pin_graph(std::span<const std::uint8_t> payload,
                        const RequestHead& head, Graph& g, std::string& err) {
  return decode_graph_arrays(payload.data() + kPinHeadBytes, head.n, head.arcs,
                             g, err);
}

MultilevelConfig config_from_head(const RequestHead& head) {
  MultilevelConfig cfg;
  // The scheme byte selects both the strategy and (for the default
  // strategy) the matching heuristic; the head was validated, so the
  // decode cannot fail here.
  scheme_from_byte(head.matching, cfg.coarsen.strategy, cfg.matching);
  cfg.initpart = static_cast<InitPartScheme>(head.initpart);
  cfg.refine = static_cast<RefinePolicy>(head.refine);
  cfg.coarsen_to = static_cast<vid_t>(head.coarsen_to);
  cfg.threads = 1;
  return cfg;
}

void encode_partition_request(const Graph& g, const RequestOptions& opts,
                              std::vector<std::uint8_t>& out) {
  out.clear();
  const auto n = static_cast<std::uint64_t>(g.num_vertices());
  const auto arcs = static_cast<std::uint64_t>(g.num_arcs());
  out.reserve(kRequestHeadBytes + 8 * (n + 1) + 4 * arcs + 8 * n + 8 * arcs);
  put_u32(out, static_cast<std::uint32_t>(opts.k));
  put_u64(out, opts.seed);
  out.push_back(scheme_byte(opts.coarsen_strategy, opts.matching));
  out.push_back(static_cast<std::uint8_t>(opts.initpart));
  out.push_back(static_cast<std::uint8_t>(opts.refine));
  out.push_back(static_cast<std::uint8_t>(opts.kway_mode));
  put_u32(out, static_cast<std::uint32_t>(opts.coarsen_to));
  put_u64(out, opts.deadline_ms);
  put_u64(out, n);
  put_u64(out, arcs);
  for (eid_t x : g.xadj()) put_u64(out, static_cast<std::uint64_t>(x));
  for (vid_t v : g.adjncy()) put_u32(out, static_cast<std::uint32_t>(v));
  for (vwt_t w : g.vwgt()) put_u64(out, static_cast<std::uint64_t>(w));
  for (ewt_t w : g.adjwgt()) put_u64(out, static_cast<std::uint64_t>(w));
}

void encode_partition_response(std::span<const part_t> part, part_t k, ewt_t edge_cut,
                               bool cache_hit, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(24 + 4 * part.size());
  put_u32(out, static_cast<std::uint32_t>(k));
  put_u64(out, static_cast<std::uint64_t>(edge_cut));
  out.push_back(cache_hit ? 1 : 0);
  out.push_back(0);
  put_u16(out, 0);
  put_u64(out, static_cast<std::uint64_t>(part.size()));
  for (part_t pt : part) put_u32(out, static_cast<std::uint32_t>(pt));
}

bool decode_partition_response(std::span<const std::uint8_t> payload,
                               PartitionResponseView& out) {
  if (payload.size() < 24) return false;
  const std::uint8_t* p = payload.data();
  out.k = static_cast<part_t>(get_u32(p));
  out.edge_cut = static_cast<ewt_t>(get_u64(p + 4));
  out.cache_hit = p[12] != 0;
  out.n = get_u64(p + 16);
  if (payload.size() != 24 + 4 * out.n) return false;
  out.labels = payload.subspan(24);
  return true;
}

void encode_error_response(Status status, std::string_view message,
                           std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(8 + message.size());
  out.push_back(static_cast<std::uint8_t>(status));
  out.push_back(0);
  put_u16(out, 0);
  put_u32(out, static_cast<std::uint32_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
}

void encode_error_frame(Status status, std::string_view message,
                        std::vector<std::uint8_t>& out) {
  out.clear();
  out.resize(kFrameHeaderBytes);
  FrameHeader h;
  h.type = MsgType::kErrorResponse;
  h.payload_len = static_cast<std::uint32_t>(8 + message.size());
  encode_frame_header(h, out.data());
  out.push_back(static_cast<std::uint8_t>(status));
  out.push_back(0);
  put_u16(out, 0);
  put_u32(out, static_cast<std::uint32_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
}

bool decode_error_response(std::span<const std::uint8_t> payload, Status& status,
                           std::string& message) {
  if (payload.size() < 8) return false;
  status = static_cast<Status>(payload[0]);
  const std::uint32_t len = get_u32(payload.data() + 4);
  if (payload.size() != 8 + static_cast<std::size_t>(len)) return false;
  message.assign(reinterpret_cast<const char*>(payload.data() + 8), len);
  return true;
}

void encode_stats_response(std::string_view json, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(4 + json.size());
  put_u32(out, static_cast<std::uint32_t>(json.size()));
  out.insert(out.end(), json.begin(), json.end());
}

bool decode_stats_response(std::span<const std::uint8_t> payload, std::string& json) {
  if (payload.size() < 4) return false;
  const std::uint32_t len = get_u32(payload.data());
  if (payload.size() != 4 + static_cast<std::size_t>(len)) return false;
  json.assign(reinterpret_cast<const char*>(payload.data() + 4), len);
  return true;
}

void encode_pin_request(const Graph& g, std::vector<std::uint8_t>& out) {
  out.clear();
  const auto n = static_cast<std::uint64_t>(g.num_vertices());
  const auto arcs = static_cast<std::uint64_t>(g.num_arcs());
  out.reserve(kPinHeadBytes + 8 * (n + 1) + 4 * arcs + 8 * n + 8 * arcs);
  put_u64(out, n);
  put_u64(out, arcs);
  for (eid_t x : g.xadj()) put_u64(out, static_cast<std::uint64_t>(x));
  for (vid_t v : g.adjncy()) put_u32(out, static_cast<std::uint32_t>(v));
  for (vwt_t w : g.vwgt()) put_u64(out, static_cast<std::uint64_t>(w));
  for (ewt_t w : g.adjwgt()) put_u64(out, static_cast<std::uint64_t>(w));
}

Status decode_pin_request(std::span<const std::uint8_t> payload,
                          RequestHead& out, std::string& err) {
  if (payload.size() < kPinHeadBytes) {
    err = "pin payload shorter than the fixed head";
    return Status::kBadRequest;
  }
  out.n = get_u64(payload.data());
  out.arcs = get_u64(payload.data() + 8);
  if (out.n > static_cast<std::uint64_t>(std::numeric_limits<vid_t>::max())) {
    err = "vertex count exceeds vid_t";
    return Status::kBadRequest;
  }
  // Same wrap hardening as decode_request_head: bound both dimensions by
  // the payload before any length products.
  const std::uint64_t budget = payload.size() - kPinHeadBytes;
  if (out.n > budget / 16 || out.arcs > budget / 12) {
    err = "declared graph dimensions exceed the payload length";
    return Status::kBadRequest;
  }
  const std::uint64_t expect =
      kPinHeadBytes + 8 * (out.n + 1) + 4 * out.arcs + 8 * out.n + 8 * out.arcs;
  if (payload.size() != expect) {
    err = "payload length does not match the declared graph dimensions";
    return Status::kBadRequest;
  }
  return Status::kOk;
}

void encode_pin_response(std::uint64_t fingerprint, std::uint64_t n,
                         std::uint64_t arcs, bool already_pinned,
                         std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(32);
  put_u64(out, fingerprint);
  put_u64(out, n);
  put_u64(out, arcs);
  out.push_back(already_pinned ? 1 : 0);
  for (int i = 0; i < 7; ++i) out.push_back(0);
}

bool decode_pin_response(std::span<const std::uint8_t> payload,
                         PinResponseView& out) {
  if (payload.size() != 32) return false;
  out.fingerprint = get_u64(payload.data());
  out.n = get_u64(payload.data() + 8);
  out.arcs = get_u64(payload.data() + 16);
  out.already_pinned = payload[24] != 0;
  return true;
}

Status decode_delta_head(std::span<const std::uint8_t> payload, DeltaHead& out,
                         std::string& err) {
  if (payload.size() < kDeltaHeadBytes) {
    err = "delta payload shorter than the fixed head";
    return Status::kBadRequest;
  }
  const std::uint8_t* p = payload.data();
  out.k = get_u32(p);
  out.seed = get_u64(p + 4);
  out.matching = p[12];
  out.initpart = p[13];
  out.refine = p[14];
  out.kway_mode = p[15];
  out.coarsen_to = get_u32(p + 16);
  out.deadline_ms = get_u64(p + 20);
  out.fingerprint = get_u64(p + 28);
  out.n_edge_ins = get_u64(p + 36);
  out.n_edge_del = get_u64(p + 44);
  out.n_vertex_add = get_u64(p + 52);
  out.n_vertex_rem = get_u64(p + 60);
  out.n_weight_upd = get_u64(p + 68);

  if (out.k < 1) {
    err = "k must be >= 1";
    return Status::kBadRequest;
  }
  if (out.k > static_cast<std::uint32_t>(std::numeric_limits<part_t>::max())) {
    err = "k out of range";
    return Status::kBadRequest;
  }
  if (out.matching > kSchemeByteMax) {
    err = "unknown coarsening scheme";
    return Status::kBadRequest;
  }
  if (out.initpart > static_cast<std::uint8_t>(InitPartScheme::kSpectral)) {
    err = "unknown initial-partitioning scheme";
    return Status::kBadRequest;
  }
  if (out.refine > static_cast<std::uint8_t>(RefinePolicy::kBKLGR)) {
    err = "unknown refinement policy";
    return Status::kBadRequest;
  }
  if (out.kway_mode > static_cast<std::uint8_t>(KwayMode::kDirect)) {
    err = "unknown kway mode";
    return Status::kBadRequest;
  }
  if (out.coarsen_to < 1 ||
      out.coarsen_to >
          static_cast<std::uint32_t>(std::numeric_limits<vid_t>::max())) {
    err = "coarsen_to out of range";
    return Status::kBadRequest;
  }
  if (out.deadline_ms > kMaxDeadlineMs) {
    err = "deadline_ms above the accepted ceiling";
    return Status::kBadRequest;
  }
  // Bound every op count by what the payload could carry *before* the
  // exact-length product — the same mod-2^64 wrap hardening as
  // decode_request_head.
  const std::uint64_t budget = payload.size() - kDeltaHeadBytes;
  if (out.n_edge_ins > budget / 16 || out.n_edge_del > budget / 8 ||
      out.n_vertex_add > budget / 8 || out.n_vertex_rem > budget / 4 ||
      out.n_weight_upd > budget / 12) {
    err = "declared op counts exceed the payload length";
    return Status::kBadRequest;
  }
  const std::uint64_t expect = kDeltaHeadBytes + 16 * out.n_edge_ins +
                               8 * out.n_edge_del + 8 * out.n_vertex_add +
                               4 * out.n_vertex_rem + 12 * out.n_weight_upd;
  if (payload.size() != expect) {
    err = "payload length does not match the declared op counts";
    return Status::kBadRequest;
  }
  return Status::kOk;
}

Status decode_delta_ops(std::span<const std::uint8_t> payload,
                        const DeltaHead& head, dynamic::DeltaBatch& out,
                        std::string& err) {
  constexpr std::uint32_t kMaxId =
      static_cast<std::uint32_t>(std::numeric_limits<vid_t>::max());
  const std::uint8_t* p = payload.data() + kDeltaHeadBytes;
  out.clear();
  out.edge_ins.resize(static_cast<std::size_t>(head.n_edge_ins));
  for (auto& e : out.edge_ins) {
    const std::uint32_t u = get_u32(p);
    const std::uint32_t v = get_u32(p + 4);
    if (u > kMaxId || v > kMaxId) {
      err = "edge insertion id exceeds vid_t";
      return Status::kBadRequest;
    }
    e = {static_cast<vid_t>(u), static_cast<vid_t>(v),
         static_cast<ewt_t>(get_u64(p + 8))};
    p += 16;
  }
  out.edge_del.resize(static_cast<std::size_t>(head.n_edge_del));
  for (auto& e : out.edge_del) {
    const std::uint32_t u = get_u32(p);
    const std::uint32_t v = get_u32(p + 4);
    if (u > kMaxId || v > kMaxId) {
      err = "edge deletion id exceeds vid_t";
      return Status::kBadRequest;
    }
    e = {static_cast<vid_t>(u), static_cast<vid_t>(v)};
    p += 8;
  }
  out.vertex_add.resize(static_cast<std::size_t>(head.n_vertex_add));
  for (auto& w : out.vertex_add) {
    w = static_cast<vwt_t>(get_u64(p));
    p += 8;
  }
  out.vertex_rem.resize(static_cast<std::size_t>(head.n_vertex_rem));
  for (auto& v : out.vertex_rem) {
    const std::uint32_t id = get_u32(p);
    if (id > kMaxId) {
      err = "vertex removal id exceeds vid_t";
      return Status::kBadRequest;
    }
    v = static_cast<vid_t>(id);
    p += 4;
  }
  out.weight_upd.resize(static_cast<std::size_t>(head.n_weight_upd));
  for (auto& wu : out.weight_upd) {
    const std::uint32_t id = get_u32(p);
    if (id > kMaxId) {
      err = "weight update id exceeds vid_t";
      return Status::kBadRequest;
    }
    wu = {static_cast<vid_t>(id), static_cast<vwt_t>(get_u64(p + 4))};
    p += 12;
  }
  return Status::kOk;
}

void encode_delta_request(std::uint64_t fingerprint,
                          const dynamic::DeltaBatch& batch,
                          const RequestOptions& opts,
                          std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(kDeltaHeadBytes + 16 * batch.edge_ins.size() +
              8 * batch.edge_del.size() + 8 * batch.vertex_add.size() +
              4 * batch.vertex_rem.size() + 12 * batch.weight_upd.size());
  put_u32(out, static_cast<std::uint32_t>(opts.k));
  put_u64(out, opts.seed);
  out.push_back(scheme_byte(opts.coarsen_strategy, opts.matching));
  out.push_back(static_cast<std::uint8_t>(opts.initpart));
  out.push_back(static_cast<std::uint8_t>(opts.refine));
  out.push_back(static_cast<std::uint8_t>(opts.kway_mode));
  put_u32(out, static_cast<std::uint32_t>(opts.coarsen_to));
  put_u64(out, opts.deadline_ms);
  put_u64(out, fingerprint);
  put_u64(out, static_cast<std::uint64_t>(batch.edge_ins.size()));
  put_u64(out, static_cast<std::uint64_t>(batch.edge_del.size()));
  put_u64(out, static_cast<std::uint64_t>(batch.vertex_add.size()));
  put_u64(out, static_cast<std::uint64_t>(batch.vertex_rem.size()));
  put_u64(out, static_cast<std::uint64_t>(batch.weight_upd.size()));
  for (const auto& e : batch.edge_ins) {
    put_u32(out, static_cast<std::uint32_t>(e.u));
    put_u32(out, static_cast<std::uint32_t>(e.v));
    put_u64(out, static_cast<std::uint64_t>(e.w));
  }
  for (const auto& e : batch.edge_del) {
    put_u32(out, static_cast<std::uint32_t>(e.u));
    put_u32(out, static_cast<std::uint32_t>(e.v));
  }
  for (vwt_t w : batch.vertex_add) put_u64(out, static_cast<std::uint64_t>(w));
  for (vid_t v : batch.vertex_rem) put_u32(out, static_cast<std::uint32_t>(v));
  for (const auto& wu : batch.weight_upd) {
    put_u32(out, static_cast<std::uint32_t>(wu.v));
    put_u64(out, static_cast<std::uint64_t>(wu.w));
  }
}

MultilevelConfig config_from_head(const DeltaHead& head) {
  MultilevelConfig cfg;
  // The scheme byte selects both the strategy and (for the default
  // strategy) the matching heuristic; the head was validated, so the
  // decode cannot fail here.
  scheme_from_byte(head.matching, cfg.coarsen.strategy, cfg.matching);
  cfg.initpart = static_cast<InitPartScheme>(head.initpart);
  cfg.refine = static_cast<RefinePolicy>(head.refine);
  cfg.coarsen_to = static_cast<vid_t>(head.coarsen_to);
  cfg.threads = 1;
  return cfg;
}

void encode_delta_response(std::uint64_t fingerprint, bool from_scratch,
                           std::uint8_t reason, std::span<const part_t> part,
                           part_t k, ewt_t edge_cut, bool cache_hit,
                           std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(12 + 24 + 4 * part.size());
  put_u64(out, fingerprint);
  out.push_back(from_scratch ? 1 : 0);
  out.push_back(reason);
  put_u16(out, 0);
  put_u32(out, static_cast<std::uint32_t>(k));
  put_u64(out, static_cast<std::uint64_t>(edge_cut));
  out.push_back(cache_hit ? 1 : 0);
  out.push_back(0);
  put_u16(out, 0);
  put_u64(out, static_cast<std::uint64_t>(part.size()));
  for (part_t pt : part) put_u32(out, static_cast<std::uint32_t>(pt));
}

bool decode_delta_response(std::span<const std::uint8_t> payload,
                           DeltaResponseView& out) {
  if (payload.size() < 12) return false;
  out.fingerprint = get_u64(payload.data());
  out.from_scratch = payload[8] != 0;
  out.reason = payload[9];
  return decode_partition_response(payload.subspan(12), out.body);
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

CacheKey cache_key_of(std::span<const std::uint8_t> payload) {
  CacheKey key;
  if (payload.size() >= kRequestHeadBytes) {
    key.config_digest = fnv1a64(payload.subspan(0, kConfigDigestBytes));
    key.graph_fp = fnv1a64(payload.subspan(kGraphRegionOffset));
    key.k = get_u32(payload.data());
    key.n = get_u64(payload.data() + kGraphRegionOffset);
  }
  return key;
}

}  // namespace mgp::server
