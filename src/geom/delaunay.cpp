#include "geom/delaunay.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "graph/builder.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

/// Twice the signed area of (a, b, c); > 0 when ccw.
inline double orient2d(double ax, double ay, double bx, double by, double cx,
                       double cy) {
  return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

/// > 0 when d lies inside the circumcircle of ccw triangle (a, b, c).
inline double incircle(double ax, double ay, double bx, double by, double cx,
                       double cy, double dx, double dy) {
  const double adx = ax - dx, ady = ay - dy;
  const double bdx = bx - dx, bdy = by - dy;
  const double cdx = cx - dx, cdy = cy - dy;
  const double ad = adx * adx + ady * ady;
  const double bd = bdx * bdx + bdy * bdy;
  const double cd = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) +
         ad * (bdx * cdy - bdy * cdx);
}

struct Tri {
  vid_t v[3];    // ccw vertex ids
  int nbr[3];    // nbr[i] = triangle across the edge opposite v[i]; -1 = hull
  bool alive = true;
};

class BowyerWatson {
 public:
  BowyerWatson(std::span<const double> xs, std::span<const double> ys)
      : n_(static_cast<vid_t>(xs.size())) {
    px_.assign(xs.begin(), xs.end());
    py_.assign(ys.begin(), ys.end());

    // Super-triangle big enough to contain everything.
    double mnx = px_[0], mxx = px_[0], mny = py_[0], mxy = py_[0];
    for (vid_t i = 1; i < n_; ++i) {
      mnx = std::min(mnx, px_[static_cast<std::size_t>(i)]);
      mxx = std::max(mxx, px_[static_cast<std::size_t>(i)]);
      mny = std::min(mny, py_[static_cast<std::size_t>(i)]);
      mxy = std::max(mxy, py_[static_cast<std::size_t>(i)]);
    }
    const double span = std::max(mxx - mnx, mxy - mny) + 1.0;
    const double cx = 0.5 * (mnx + mxx), cy = 0.5 * (mny + mxy);
    px_.push_back(cx - 20.0 * span);
    py_.push_back(cy - 10.0 * span);
    px_.push_back(cx + 20.0 * span);
    py_.push_back(cy - 10.0 * span);
    px_.push_back(cx);
    py_.push_back(cy + 20.0 * span);
    super_[0] = n_;
    super_[1] = n_ + 1;
    super_[2] = n_ + 2;
    tris_.push_back(Tri{{super_[0], super_[1], super_[2]}, {-1, -1, -1}, true});
  }

  void run() {
    // Insert in a shuffled order for expected O(n log n)-ish behaviour.
    Rng rng(0x5eedULL);
    std::vector<vid_t> order = rng.permutation(n_);
    for (vid_t p : order) insert(p);
  }

  Triangulation extract() const {
    Triangulation t;
    for (const Tri& tr : tris_) {
      if (!tr.alive) continue;
      if (tr.v[0] >= n_ || tr.v[1] >= n_ || tr.v[2] >= n_) continue;  // super
      t.tri_vertices.push_back(tr.v[0]);
      t.tri_vertices.push_back(tr.v[1]);
      t.tri_vertices.push_back(tr.v[2]);
    }
    return t;
  }

 private:
  double x(vid_t v) const { return px_[static_cast<std::size_t>(v)]; }
  double y(vid_t v) const { return py_[static_cast<std::size_t>(v)]; }

  bool in_circumcircle(const Tri& t, vid_t p) const {
    return incircle(x(t.v[0]), y(t.v[0]), x(t.v[1]), y(t.v[1]), x(t.v[2]),
                    y(t.v[2]), x(p), y(p)) > 0.0;
  }

  /// Walks from `start` towards the triangle containing p.
  int locate(vid_t p, int start) const {
    int cur = start;
    // Bounded walk; falls back to a scan if numerics ever cycle.
    for (int step = 0; step < 4 * static_cast<int>(tris_.size()) + 16; ++step) {
      const Tri& t = tris_[static_cast<std::size_t>(cur)];
      assert(t.alive);
      int move = -1;
      for (int e = 0; e < 3; ++e) {
        // Edge opposite v[e] runs v[(e+1)%3] -> v[(e+2)%3].
        const vid_t a = t.v[(e + 1) % 3], b = t.v[(e + 2) % 3];
        if (orient2d(x(a), y(a), x(b), y(b), x(p), y(p)) < 0.0) {
          move = t.nbr[e];
          break;
        }
      }
      if (move < 0) return cur;  // inside (or on) this triangle
      cur = move;
    }
    // Fallback: exhaustive search (defensive; should not trigger on random
    // inputs).
    for (std::size_t i = 0; i < tris_.size(); ++i) {
      const Tri& t = tris_[i];
      if (!t.alive) continue;
      bool inside = true;
      for (int e = 0; e < 3 && inside; ++e) {
        const vid_t a = t.v[(e + 1) % 3], b = t.v[(e + 2) % 3];
        inside = orient2d(x(a), y(a), x(b), y(b), x(p), y(p)) >= 0.0;
      }
      if (inside) return static_cast<int>(i);
    }
    throw std::runtime_error("delaunay: point location failed");
  }

  void insert(vid_t p) {
    const int seed_tri = locate(p, last_alive_);

    // Cavity: BFS over triangles whose circumcircle contains p.
    std::vector<int> cavity;
    std::vector<int> stack = {seed_tri};
    std::vector<char> in_cavity(tris_.size(), 0);
    in_cavity[static_cast<std::size_t>(seed_tri)] = 1;
    while (!stack.empty()) {
      int ti = stack.back();
      stack.pop_back();
      cavity.push_back(ti);
      const Tri t = tris_[static_cast<std::size_t>(ti)];
      for (int e = 0; e < 3; ++e) {
        int nb = t.nbr[e];
        if (nb < 0 || in_cavity[static_cast<std::size_t>(nb)]) continue;
        if (in_circumcircle(tris_[static_cast<std::size_t>(nb)], p)) {
          in_cavity[static_cast<std::size_t>(nb)] = 1;
          stack.push_back(nb);
        }
      }
    }

    // Boundary edges of the cavity: (a, b, outside-neighbor).
    struct BEdge {
      vid_t a, b;
      int outside;
    };
    std::vector<BEdge> boundary;
    for (int ti : cavity) {
      const Tri& t = tris_[static_cast<std::size_t>(ti)];
      for (int e = 0; e < 3; ++e) {
        int nb = t.nbr[e];
        if (nb >= 0 && in_cavity[static_cast<std::size_t>(nb)]) continue;
        boundary.push_back(BEdge{t.v[(e + 1) % 3], t.v[(e + 2) % 3], nb});
      }
    }
    for (int ti : cavity) tris_[static_cast<std::size_t>(ti)].alive = false;

    // Retriangulate: one new triangle (p, a, b) per boundary edge.
    std::unordered_map<std::uint64_t, int> edge_owner;  // directed (p,a)->tri
    edge_owner.reserve(boundary.size() * 2);
    auto key = [this](vid_t u, vid_t v) {
      return static_cast<std::uint64_t>(u) * static_cast<std::uint64_t>(n_ + 3) +
             static_cast<std::uint64_t>(v);
    };
    std::vector<int> new_ids;
    new_ids.reserve(boundary.size());
    for (const BEdge& be : boundary) {
      const int id = static_cast<int>(tris_.size());
      tris_.push_back(Tri{{p, be.a, be.b}, {be.outside, -1, -1}, true});
      if (be.outside >= 0) {
        // Hook the outside triangle back to us across (a, b).
        Tri& out = tris_[static_cast<std::size_t>(be.outside)];
        for (int e = 0; e < 3; ++e) {
          const vid_t oa = out.v[(e + 1) % 3], ob = out.v[(e + 2) % 3];
          if ((oa == be.b && ob == be.a) || (oa == be.a && ob == be.b)) {
            out.nbr[e] = id;
            break;
          }
        }
      }
      edge_owner[key(p, be.a)] = id;  // edge p->a is opposite vertex b slot 2
      edge_owner[key(be.b, p)] = id;  // edge b->p is opposite vertex a slot 1
      new_ids.push_back(id);
    }
    // Link the fan internally: triangle (p, a, b) meets the neighbour that
    // owns edge (p, a) reversed = (a, p), and (b, p) reversed = (p, b).
    for (int id : new_ids) {
      Tri& t = tris_[static_cast<std::size_t>(id)];
      // nbr[1] is across edge (b, p): shared with the fan triangle whose
      // boundary edge *starts* at our b — it registered key(p, its_a = b).
      auto share_pb = edge_owner.find(key(p, t.v[2]));
      if (share_pb != edge_owner.end() && share_pb->second != id) {
        t.nbr[1] = share_pb->second;
      }
      // nbr[2] is across edge (p, a): shared with the fan triangle whose
      // boundary edge *ends* at our a — it registered key(its_b = a, p).
      auto share_ap = edge_owner.find(key(t.v[1], p));
      if (share_ap != edge_owner.end() && share_ap->second != id) {
        t.nbr[2] = share_ap->second;
      }
    }
    last_alive_ = new_ids.empty() ? last_alive_ : new_ids.back();

    // The grown tris_ array invalidates in_cavity sizing next round; that is
    // fine because it is rebuilt per insert.
  }

  vid_t n_;
  std::vector<double> px_, py_;
  vid_t super_[3];
  std::vector<Tri> tris_;
  int last_alive_ = 0;
};

}  // namespace

Triangulation delaunay_triangulate(std::span<const double> xs,
                                   std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("delaunay: coordinate arrays differ in size");
  }
  if (xs.size() < 3) throw std::invalid_argument("delaunay: need at least 3 points");
  BowyerWatson bw(xs, ys);
  bw.run();
  return bw.extract();
}

EmbeddedGraph delaunay_mesh_graph(std::span<const double> xs,
                                  std::span<const double> ys) {
  Triangulation t = delaunay_triangulate(xs, ys);
  GraphBuilder b(static_cast<vid_t>(xs.size()));
  for (std::size_t i = 0; i < t.num_triangles(); ++i) {
    const vid_t a = t.tri_vertices[3 * i];
    const vid_t v = t.tri_vertices[3 * i + 1];
    const vid_t c = t.tri_vertices[3 * i + 2];
    // GraphBuilder accumulates duplicate weights; add each triangle edge
    // with its (min,max) orientation exactly once per *triangle*, then
    // normalise: interior edges appear in two triangles -> weight 2.  We
    // want unit weights, so rebuild below.
    b.add_edge(a, v);
    b.add_edge(v, c);
    b.add_edge(c, a);
  }
  Graph g0 = std::move(b).build();
  // Normalise accumulated weights back to 1.
  std::vector<eid_t> xadj(g0.xadj().begin(), g0.xadj().end());
  std::vector<vid_t> adjncy(g0.adjncy().begin(), g0.adjncy().end());
  std::vector<vwt_t> vwgt(g0.vwgt().begin(), g0.vwgt().end());
  std::vector<ewt_t> adjwgt(adjncy.size(), 1);
  EmbeddedGraph out;
  out.graph = Graph(std::move(xadj), std::move(adjncy), std::move(vwgt),
                    std::move(adjwgt));
  out.coords.dims = 2;
  out.coords.x.assign(xs.begin(), xs.end());
  out.coords.y.assign(ys.begin(), ys.end());
  return out;
}

EmbeddedGraph delaunay_mesh(vid_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n)), ys(static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] = rng.next_double();
    ys[static_cast<std::size_t>(i)] = rng.next_double();
  }
  return delaunay_mesh_graph(xs, ys);
}

}  // namespace mgp
