#include "geom/geometric_bisect.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/kway.hpp"
#include "graph/permute.hpp"
#include "initpart/spectral_init.hpp"
#include "spectral/jacobi.hpp"

namespace mgp {
namespace {

/// Axis (0/1/2) with the largest coordinate spread.
int widest_axis(const Coordinates& c) {
  int best = 0;
  double best_spread = -1.0;
  for (int d = 0; d < c.dims; ++d) {
    auto a = c.axis(d);
    if (a.empty()) continue;
    auto [mn, mx] = std::minmax_element(a.begin(), a.end());
    double spread = *mx - *mn;
    if (spread > best_spread) {
      best_spread = spread;
      best = d;
    }
  }
  return best;
}

}  // namespace

Bisection coordinate_bisect(const Graph& g, const Coordinates& coords, vwt_t target0) {
  assert(coords.size() == static_cast<std::size_t>(g.num_vertices()));
  const int axis = widest_axis(coords);
  return split_at_weighted_median(g, coords.axis(axis), target0);
}

std::vector<double> principal_axis(const Graph& g, const Coordinates& coords) {
  const std::size_t n = coords.size();
  const int d = coords.dims;
  // Weighted centroid.
  std::vector<double> mean(static_cast<std::size_t>(d), 0.0);
  double wsum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = static_cast<double>(g.vertex_weight(static_cast<vid_t>(i)));
    wsum += w;
    for (int a = 0; a < d; ++a) mean[static_cast<std::size_t>(a)] += w * coords.coord(a, i);
  }
  if (wsum > 0) {
    for (double& m : mean) m /= wsum;
  }
  // Inertia (covariance) matrix.
  std::vector<double> cov(static_cast<std::size_t>(d) * static_cast<std::size_t>(d), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = static_cast<double>(g.vertex_weight(static_cast<vid_t>(i)));
    for (int a = 0; a < d; ++a) {
      const double da = coords.coord(a, i) - mean[static_cast<std::size_t>(a)];
      for (int b = 0; b < d; ++b) {
        const double db = coords.coord(b, i) - mean[static_cast<std::size_t>(b)];
        cov[static_cast<std::size_t>(a * d + b)] += w * da * db;
      }
    }
  }
  DenseEigen e = jacobi_eigen(cov, static_cast<std::size_t>(d));
  // Largest eigenvalue is last (ascending order).
  std::vector<double> axis(e.vectors.end() - d, e.vectors.end());
  return axis;
}

Bisection inertial_bisect(const Graph& g, const Coordinates& coords, vwt_t target0) {
  assert(coords.size() == static_cast<std::size_t>(g.num_vertices()));
  if (g.num_vertices() == 0) return make_bisection(g, {});
  std::vector<double> axis = principal_axis(g, coords);
  std::vector<double> proj(coords.size(), 0.0);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    for (int a = 0; a < coords.dims; ++a) {
      proj[i] += axis[static_cast<std::size_t>(a)] * coords.coord(a, i);
    }
  }
  return split_at_weighted_median(g, proj, target0);
}

namespace {

void geometric_recurse(const Graph& g, const Coordinates& coords,
                       std::span<const vid_t> to_global, part_t k, part_t base,
                       GeometricMethod method, std::vector<part_t>& out) {
  if (k <= 1 || g.num_vertices() == 0) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      out[static_cast<std::size_t>(to_global[static_cast<std::size_t>(v)])] = base;
    }
    return;
  }
  if (g.num_vertices() <= k) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      out[static_cast<std::size_t>(to_global[static_cast<std::size_t>(v)])] =
          base + (v % k);
    }
    return;
  }
  const part_t k0 = (k + 1) / 2;
  const vwt_t target0 = static_cast<vwt_t>(
      (static_cast<long double>(g.total_vertex_weight()) * k0) / k + 0.5L);
  Bisection b = method == GeometricMethod::kCoordinate
                    ? coordinate_bisect(g, coords, target0)
                    : inertial_bisect(g, coords, target0);
  for (part_t s = 0; s < 2; ++s) {
    Subgraph sub = extract_where(g, b.side, s);
    Coordinates sub_coords = subset_coordinates(coords, sub.local_to_global);
    std::vector<vid_t> global_ids(sub.local_to_global.size());
    for (std::size_t i = 0; i < global_ids.size(); ++i) {
      global_ids[i] = to_global[static_cast<std::size_t>(sub.local_to_global[i])];
    }
    geometric_recurse(sub.graph, sub_coords, global_ids, s == 0 ? k0 : k - k0,
                      s == 0 ? base : base + k0, method, out);
  }
}

}  // namespace

GeometricKwayResult geometric_partition(const Graph& g, const Coordinates& coords,
                                        part_t k, GeometricMethod method) {
  GeometricKwayResult out;
  out.k = k;
  out.part.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<vid_t> identity(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) identity[static_cast<std::size_t>(v)] = v;
  geometric_recurse(g, coords, identity, k, 0, method, out.part);
  out.edge_cut = compute_kway_cut(g, out.part);
  return out;
}

}  // namespace mgp
