// Vertex coordinates for geometry-aware partitioning.
//
// §1 of the paper contrasts a third class of partitioners — geometric
// algorithms [17, 28, 29] — that "tend to be fast but often yield
// partitions that are worse than those obtained by spectral methods", and
// that need coordinate information which "often ... is not available"
// (e.g. linear programming).  This module supplies the coordinate carrier
// and mesh generators that expose their natural embeddings, so the claim
// can be measured (bench/figG_geometric).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace mgp {

/// Per-vertex coordinates, dims in {1, 2, 3}.  Stored structure-of-arrays;
/// axis(d) is the d-th coordinate array.
struct Coordinates {
  int dims = 0;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> z;

  std::size_t size() const { return x.size(); }
  std::span<const double> axis(int d) const {
    return d == 0 ? std::span<const double>(x)
                  : d == 1 ? std::span<const double>(y) : std::span<const double>(z);
  }
  double coord(int d, std::size_t i) const {
    return d == 0 ? x[i] : d == 1 ? y[i] : z[i];
  }
};

/// A graph together with its embedding.
struct EmbeddedGraph {
  Graph graph;
  Coordinates coords;
};

/// Geometry-exposing counterparts of the graph/generators.hpp meshes.
EmbeddedGraph embedded_grid2d(vid_t nx, vid_t ny);
EmbeddedGraph embedded_fem2d_tri(vid_t nx, vid_t ny, std::uint64_t seed);
EmbeddedGraph embedded_grid3d(vid_t nx, vid_t ny, vid_t nz);
EmbeddedGraph embedded_grid3d_27(vid_t nx, vid_t ny, vid_t nz);
EmbeddedGraph embedded_fem3d_tet(vid_t nx, vid_t ny, vid_t nz, std::uint64_t seed);
EmbeddedGraph embedded_random_geometric(vid_t n, double avg_degree, std::uint64_t seed);

/// Restriction of coordinates to a vertex subset (same order as the subset).
Coordinates subset_coordinates(const Coordinates& c, std::span<const vid_t> vertices);

}  // namespace mgp
