// Delaunay triangulation (Bowyer–Watson with walking point location).
//
// The paper's 2D test matrices (4ELT, the L-shape) are unstructured
// triangular FE meshes; our grid-based stand-ins approximate them, and this
// module generates the real thing: the Delaunay triangulation of a random
// point set is exactly the class of graph an unstructured 2D mesher
// produces (planar, average degree < 6, O(sqrt n) separators).  Used by the
// generators (delaunay_mesh) and exercised directly by the geometry tests.
//
// Robustness note: predicates are evaluated in double precision — adequate
// for randomly generated points (the generators jitter any structured
// inputs), not for adversarial/cocircular data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/geometry.hpp"
#include "graph/csr.hpp"

namespace mgp {

struct Triangulation {
  /// Triangle vertex ids (ccw), 3 per triangle.
  std::vector<vid_t> tri_vertices;
  std::size_t num_triangles() const { return tri_vertices.size() / 3; }
};

/// Delaunay triangulation of 2D points (xs/ys parallel arrays, size n >= 3).
/// Points should be in general position (random/jittered data qualifies).
Triangulation delaunay_triangulate(std::span<const double> xs,
                                   std::span<const double> ys);

/// The edge graph of the triangulation (each triangle edge once, unit
/// weights) together with the point coordinates.
EmbeddedGraph delaunay_mesh_graph(std::span<const double> xs,
                                  std::span<const double> ys);

/// Convenience generator: Delaunay mesh of n uniform random points in the
/// unit square.  The paper-suite stand-in for unstructured 2D FE meshes.
EmbeddedGraph delaunay_mesh(vid_t n, std::uint64_t seed);

}  // namespace mgp
