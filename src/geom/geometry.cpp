#include "geom/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

Coordinates grid_coords2(vid_t nx, vid_t ny) {
  Coordinates c;
  c.dims = 2;
  c.x.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
  c.y.reserve(c.x.capacity());
  for (vid_t yy = 0; yy < ny; ++yy) {
    for (vid_t xx = 0; xx < nx; ++xx) {
      c.x.push_back(static_cast<double>(xx));
      c.y.push_back(static_cast<double>(yy));
    }
  }
  return c;
}

Coordinates grid_coords3(vid_t nx, vid_t ny, vid_t nz) {
  Coordinates c;
  c.dims = 3;
  const std::size_t n =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) * static_cast<std::size_t>(nz);
  c.x.reserve(n);
  c.y.reserve(n);
  c.z.reserve(n);
  for (vid_t zz = 0; zz < nz; ++zz) {
    for (vid_t yy = 0; yy < ny; ++yy) {
      for (vid_t xx = 0; xx < nx; ++xx) {
        c.x.push_back(static_cast<double>(xx));
        c.y.push_back(static_cast<double>(yy));
        c.z.push_back(static_cast<double>(zz));
      }
    }
  }
  return c;
}

}  // namespace

EmbeddedGraph embedded_grid2d(vid_t nx, vid_t ny) {
  return {grid2d(nx, ny), grid_coords2(nx, ny)};
}

EmbeddedGraph embedded_fem2d_tri(vid_t nx, vid_t ny, std::uint64_t seed) {
  return {fem2d_tri(nx, ny, seed), grid_coords2(nx, ny)};
}

EmbeddedGraph embedded_grid3d(vid_t nx, vid_t ny, vid_t nz) {
  return {grid3d(nx, ny, nz), grid_coords3(nx, ny, nz)};
}

EmbeddedGraph embedded_grid3d_27(vid_t nx, vid_t ny, vid_t nz) {
  return {grid3d_27(nx, ny, nz), grid_coords3(nx, ny, nz)};
}

EmbeddedGraph embedded_fem3d_tet(vid_t nx, vid_t ny, vid_t nz, std::uint64_t seed) {
  return {fem3d_tet(nx, ny, nz, seed), grid_coords3(nx, ny, nz)};
}

EmbeddedGraph embedded_random_geometric(vid_t n, double avg_degree,
                                        std::uint64_t seed) {
  Rng rng(seed);
  const double r = std::sqrt(avg_degree / (3.14159265358979 * double(n)));
  Coordinates pts;
  pts.dims = 2;
  pts.x.resize(static_cast<std::size_t>(n));
  pts.y.resize(static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) {
    pts.x[static_cast<std::size_t>(i)] = rng.next_double();
    pts.y[static_cast<std::size_t>(i)] = rng.next_double();
  }
  const vid_t cells = std::max<vid_t>(1, static_cast<vid_t>(1.0 / r));
  const double cell = 1.0 / cells;
  std::map<std::pair<vid_t, vid_t>, std::vector<vid_t>> grid;
  auto cell_of = [&](double v) {
    return std::min<vid_t>(cells - 1, static_cast<vid_t>(v / cell));
  };
  for (vid_t i = 0; i < n; ++i) {
    grid[{cell_of(pts.x[static_cast<std::size_t>(i)]),
          cell_of(pts.y[static_cast<std::size_t>(i)])}]
        .push_back(i);
  }
  GraphBuilder b(n);
  const double r2 = r * r;
  for (vid_t i = 0; i < n; ++i) {
    vid_t cx = cell_of(pts.x[static_cast<std::size_t>(i)]);
    vid_t cy = cell_of(pts.y[static_cast<std::size_t>(i)]);
    for (vid_t yy = cy - 1; yy <= cy + 1; ++yy) {
      for (vid_t xx = cx - 1; xx <= cx + 1; ++xx) {
        auto it = grid.find({xx, yy});
        if (it == grid.end()) continue;
        for (vid_t j : it->second) {
          if (j <= i) continue;
          double dx = pts.x[static_cast<std::size_t>(i)] - pts.x[static_cast<std::size_t>(j)];
          double dy = pts.y[static_cast<std::size_t>(i)] - pts.y[static_cast<std::size_t>(j)];
          if (dx * dx + dy * dy <= r2) b.add_edge(i, j);
        }
      }
    }
  }
  Graph g = std::move(b).build();
  Components cc = connected_components(g);
  if (cc.count <= 1) return {std::move(g), std::move(pts)};
  std::vector<vid_t> sizes(static_cast<std::size_t>(cc.count), 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ++sizes[static_cast<std::size_t>(cc.comp[static_cast<std::size_t>(v)])];
  }
  vid_t big = static_cast<vid_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<vid_t> keep;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (cc.comp[static_cast<std::size_t>(v)] == big) keep.push_back(v);
  }
  Subgraph sub = extract_subgraph(g, keep);
  Coordinates kept = subset_coordinates(pts, keep);
  return {std::move(sub.graph), std::move(kept)};
}

Coordinates subset_coordinates(const Coordinates& c, std::span<const vid_t> vertices) {
  Coordinates out;
  out.dims = c.dims;
  out.x.reserve(vertices.size());
  if (c.dims >= 2) out.y.reserve(vertices.size());
  if (c.dims >= 3) out.z.reserve(vertices.size());
  for (vid_t v : vertices) {
    out.x.push_back(c.x[static_cast<std::size_t>(v)]);
    if (c.dims >= 2) out.y.push_back(c.y[static_cast<std::size_t>(v)]);
    if (c.dims >= 3) out.z.push_back(c.z[static_cast<std::size_t>(v)]);
  }
  return out;
}

}  // namespace mgp
