// Geometric partitioning baselines (§1's third algorithm class, refs
// [17, 28, 29]).
//
// Two classical schemes:
//   * coordinate bisection — split at the weighted median along the
//     coordinate axis of largest spread (Heath & Raghavan's Cartesian
//     nested dissection [17] uses exactly this cut);
//   * inertial bisection — project onto the principal axis of the vertex
//     point cloud (the dominant eigenvector of its 2x2/3x3 inertia matrix)
//     and split at the weighted median; Chaco's "inertial" method.
//
// Both are very fast (no graph traversal at all) and use *no* connectivity
// information, which is why the paper expects them to lose to spectral and
// multilevel methods on cut quality.
#pragma once

#include "geom/geometry.hpp"
#include "initpart/bisection_state.hpp"
#include "support/rng.hpp"

namespace mgp {

enum class GeometricMethod { kCoordinate, kInertial };

/// One geometric bisection of (g, coords).  coords.size() must equal n.
Bisection coordinate_bisect(const Graph& g, const Coordinates& coords, vwt_t target0);
Bisection inertial_bisect(const Graph& g, const Coordinates& coords, vwt_t target0);

struct GeometricKwayResult {
  std::vector<part_t> part;
  part_t k = 0;
  ewt_t edge_cut = 0;
};

/// k-way geometric partitioning by recursive bisection, carrying the
/// embedding into every subproblem.
GeometricKwayResult geometric_partition(const Graph& g, const Coordinates& coords,
                                        part_t k, GeometricMethod method);

/// Principal axis (unit vector, length == dims) of a weighted point cloud —
/// the dominant eigenvector of the inertia matrix.  Exposed for tests.
std::vector<double> principal_axis(const Graph& g, const Coordinates& coords);

}  // namespace mgp
