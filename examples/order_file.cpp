// Command-line fill-reducing ordering tool (the `oemetis`/`onmetis` shape).
//
//   $ ./order_file <graph-file(.graph|.mtx)> <mlnd|mmd> [output-file]
//   $ ./order_file --demo <mlnd|mmd>
//
// Reads a symmetric matrix pattern, computes the requested ordering, prints
// the symbolic-factorisation statistics, and optionally writes the
// permutation (one original vertex id per line, elimination order).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "metrics/ordering_metrics.hpp"
#include "order/mmd.hpp"
#include "order/nested_dissection.hpp"
#include "support/timer.hpp"

using namespace mgp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <graph-file(.graph|.mtx)> <mlnd|mmd> [output-file]\n"
               "       %s --demo <mlnd|mmd>\n",
               argv0, argv0);
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);

  Graph g;
  try {
    if (std::strcmp(argv[1], "--demo") == 0) {
      g = grid3d_27(14, 14, 13);
    } else if (ends_with(argv[1], ".mtx")) {
      g = read_matrix_market_file(argv[1]);
    } else {
      g = read_metis_graph_file(argv[1]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading graph: %s\n", e.what());
    return 1;
  }

  const std::string method = argv[2];
  std::vector<vid_t> perm;
  Timer t;
  if (method == "mmd") {
    perm = mmd_order(g);
  } else if (method == "mlnd") {
    Rng rng(1995);
    MultilevelConfig cfg;
    NdOptions nd;
    perm = mlnd_order(g, cfg, nd, rng);
  } else {
    std::fprintf(stderr, "error: unknown method '%s' (want mlnd or mmd)\n",
                 method.c_str());
    return 2;
  }
  const double secs = t.seconds();

  OrderingQuality q = evaluate_ordering(g, perm);
  std::printf(
      "%s ordering of n=%d: nnz(L) %lld, ops %s, etree height %d, "
      "avg width %.1f (%.3f s)\n",
      method.c_str(), g.num_vertices(), static_cast<long long>(q.nnz_factor),
      format_flops(q.flops).c_str(), q.etree_height, q.average_width, secs);

  if (argc > 3) {
    std::ofstream out(argv[3]);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", argv[3]);
      return 1;
    }
    for (vid_t v : perm) out << v << '\n';
    std::printf("permutation written to %s\n", argv[3]);
  }
  return 0;
}
