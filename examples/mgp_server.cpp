// Partitioning service daemon (DESIGN.md §9, README "Running the server").
//
//   $ ./mgp_server --socket=/tmp/mgp.sock [options]
//   $ ./mgp_server --port=7095 [options]
//
// Options:
//   --socket=PATH       listen on a Unix-domain socket
//   --port=N            listen on 127.0.0.1:N (0 = ephemeral, printed)
//   --workers=N         worker threads                     (2)
//   --queue=N           admission queue capacity           (16)
//   --cache=N           result cache entries               (64)
//   --direct-min-k=N    auto requests use direct k-way for k >= N (64)
//   --store-mb=N        pinned-graph store byte budget in MiB     (256)
//
// SIGTERM/SIGINT drain the server: accepted work is finished and answered,
// then every thread exits and the socket file is unlinked.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.hpp"

namespace {

mgp::server::Server* g_server = nullptr;

void handle_stop_signal(int) {
  // request_stop is one pipe write + a lock-free store: async-signal-safe.
  if (g_server != nullptr) g_server->request_stop();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket=PATH | --port=N) [--workers=N] [--queue=N] "
               "[--cache=N] [--direct-min-k=N] [--store-mb=N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  mgp::server::ServerConfig cfg;
  bool have_listen = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      cfg.unix_path = arg.substr(9);
      have_listen = !cfg.unix_path.empty();
    } else if (arg.rfind("--port=", 0) == 0) {
      cfg.tcp_port = static_cast<std::uint16_t>(std::atoi(arg.c_str() + 7));
      have_listen = true;
    } else if (arg.rfind("--workers=", 0) == 0) {
      cfg.num_workers = std::atoi(arg.c_str() + 10);
      if (cfg.num_workers < 1) return usage(argv[0]);
    } else if (arg.rfind("--queue=", 0) == 0) {
      cfg.queue_capacity = static_cast<std::size_t>(std::atoll(arg.c_str() + 8));
      if (cfg.queue_capacity < 1) return usage(argv[0]);
    } else if (arg.rfind("--cache=", 0) == 0) {
      cfg.cache_capacity = static_cast<std::size_t>(std::atoll(arg.c_str() + 8));
      if (cfg.cache_capacity < 1) return usage(argv[0]);
    } else if (arg.rfind("--direct-min-k=", 0) == 0) {
      cfg.direct_min_k = std::atoi(arg.c_str() + 15);
      if (cfg.direct_min_k < 2) return usage(argv[0]);
    } else if (arg.rfind("--store-mb=", 0) == 0) {
      const long long mb = std::atoll(arg.c_str() + 11);
      if (mb < 1) return usage(argv[0]);
      cfg.store_max_bytes = static_cast<std::size_t>(mb) << 20;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (!have_listen) return usage(argv[0]);

  mgp::server::Server server(cfg);
  g_server = &server;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  std::string err;
  if (!server.start(err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (!cfg.unix_path.empty()) {
    std::printf("mgp_server listening on %s (%d workers, queue %zu, cache %zu)\n",
                cfg.unix_path.c_str(), cfg.num_workers, cfg.queue_capacity,
                cfg.cache_capacity);
  } else {
    std::printf("mgp_server listening on 127.0.0.1:%u (%d workers, queue %zu, "
                "cache %zu)\n",
                server.tcp_port(), cfg.num_workers, cfg.queue_capacity,
                cfg.cache_capacity);
  }
  std::fflush(stdout);

  server.join();  // returns after SIGTERM/SIGINT + drain
  std::printf("mgp_server: drained and stopped\n");
  g_server = nullptr;
  return 0;
}
