// Command-line partitioner: the `pmetis`-shaped tool a downstream user
// would actually run, with every phase of the paper exposed as a flag.
//
//   $ ./partition_file <graph(.graph|.mtx)|--demo> <k> [options] [-o out.part]
//
// Options (defaults = the paper's recommended configuration):
//   --matching=rm|hem|lem|hcm     matching heuristic         (hem)
//   --coarsen=match|ad|nlevel     coarsening strategy        (match)
//   --init=ggp|gggp|sbp           coarsest-graph partitioner (gggp)
//   --refine=none|gr|klr|bgr|bklr|bklgr   refinement policy  (bklgr)
//   --direct                      direct k-way instead of recursive bisection
//   --trials=N                    best-of-N partitions       (1)
//   --seed=S                      RNG seed                   (1995)
//   --threads=N                   pool workers; 0 = hardware (1)
//   --report=FILE                 structured JSON run report (obs/report)
//   --delta-script=FILE           replay a delta script (src/dynamic/
//                                 delta_script.hpp grammar) through the
//                                 incremental repartitioner — the offline
//                                 twin of `mgp_client --delta-script`,
//                                 byte-identical output for the same
//                                 graph, k, seed, scheme, and script
//   -o FILE                       write the part vector (one id per line)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/kway.hpp"
#include "core/kway_direct.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/delta_script.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/partition_io.hpp"
#include "metrics/partition_metrics.hpp"
#include "obs/report.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

using namespace mgp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <graph-file(.graph|.mtx)|--demo> <k> [options] [-o out]\n"
               "  --matching=rm|hem|lem|hcm  --coarsen=match|ad|nlevel\n"
               "  --init=ggp|gggp|sbp\n"
               "  --refine=none|gr|klr|bgr|bklr|bklgr  --direct\n"
               "  --trials=N  --seed=S  --threads=N  --report=FILE\n"
               "  --delta-script=FILE\n",
               argv0);
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool parse_matching(const std::string& v, MatchingScheme& out) {
  if (v == "rm") out = MatchingScheme::kRandom;
  else if (v == "hem") out = MatchingScheme::kHeavyEdge;
  else if (v == "lem") out = MatchingScheme::kLightEdge;
  else if (v == "hcm") out = MatchingScheme::kHeavyClique;
  else return false;
  return true;
}

bool parse_coarsen(const std::string& v, CoarsenStrategy& out) {
  if (v == "match") out = CoarsenStrategy::kMatching;
  else if (v == "ad") out = CoarsenStrategy::kAlgebraicDistance;
  else if (v == "nlevel") out = CoarsenStrategy::kNLevel;
  else return false;
  return true;
}

bool parse_init(const std::string& v, InitPartScheme& out) {
  if (v == "ggp") out = InitPartScheme::kGGP;
  else if (v == "gggp") out = InitPartScheme::kGGGP;
  else if (v == "sbp") out = InitPartScheme::kSpectral;
  else return false;
  return true;
}

bool parse_refine(const std::string& v, RefinePolicy& out) {
  if (v == "none") out = RefinePolicy::kNone;
  else if (v == "gr") out = RefinePolicy::kGR;
  else if (v == "klr") out = RefinePolicy::kKLR;
  else if (v == "bgr") out = RefinePolicy::kBGR;
  else if (v == "bklr") out = RefinePolicy::kBKLR;
  else if (v == "bklgr") out = RefinePolicy::kBKLGR;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);

  MultilevelConfig cfg;
  bool direct = false;
  int trials = 1;
  std::uint64_t seed = 1995;
  std::string out_path;
  std::string report_path;
  std::string delta_path;

  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--matching=", 0) == 0) {
      if (!parse_matching(arg.substr(11), cfg.matching)) return usage(argv[0]);
    } else if (arg.rfind("--coarsen=", 0) == 0) {
      if (!parse_coarsen(arg.substr(10), cfg.coarsen.strategy)) return usage(argv[0]);
    } else if (arg.rfind("--init=", 0) == 0) {
      if (!parse_init(arg.substr(7), cfg.initpart)) return usage(argv[0]);
    } else if (arg.rfind("--refine=", 0) == 0) {
      if (!parse_refine(arg.substr(9), cfg.refine)) return usage(argv[0]);
    } else if (arg == "--direct") {
      direct = true;
    } else if (arg.rfind("--trials=", 0) == 0) {
      trials = std::atoi(arg.c_str() + 9);
      if (trials < 1) return usage(argv[0]);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      cfg.threads = std::atoi(arg.c_str() + 10);
      if (cfg.threads < 0) return usage(argv[0]);
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else if (arg.rfind("--delta-script=", 0) == 0) {
      delta_path = arg.substr(15);
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  Graph g;
  std::string source;
  try {
    if (std::strcmp(argv[1], "--demo") == 0) {
      g = fem3d_tet(16, 16, 16, 1234);
      source = "demo fem3d_tet(16,16,16)";
    } else if (ends_with(argv[1], ".mtx")) {
      g = read_matrix_market_file(argv[1]);
      source = argv[1];
    } else {
      g = read_metis_graph_file(argv[1]);
      source = argv[1];
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading graph: %s\n", e.what());
    return 1;
  }

  const part_t k = static_cast<part_t>(std::atoi(argv[2]));
  if (k < 1) {
    std::fprintf(stderr, "error: k must be >= 1 (got '%s')\n", argv[2]);
    return 2;
  }

  std::printf("%s: %d vertices, %lld edges\n", source.c_str(), g.num_vertices(),
              static_cast<long long>(g.num_edges()));
  std::printf("scheme: %s%s, %d trial(s), seed %llu\n", describe(cfg).c_str(),
              direct ? " (direct k-way)" : "", trials,
              static_cast<unsigned long long>(seed));

  obs::Obs ob;
  if (!report_path.empty()) cfg.obs = &ob;

  if (!delta_path.empty()) {
    std::vector<dynamic::DeltaBatch> batches;
    const std::string perr = dynamic::parse_delta_script_file(delta_path, batches);
    if (!perr.empty()) {
      std::fprintf(stderr, "error: %s\n", perr.c_str());
      return 1;
    }
    if (batches.empty()) {
      std::fprintf(stderr, "error: delta script has no batches\n");
      return 1;
    }

    // Exactly the server's per-delta pipeline (threads from --threads; the
    // result is pool-size-invariant, so the bytes match the server's for
    // every worker count): patch, then warm-start repartition with default
    // incremental thresholds.
    dynamic::IncrementalConfig icfg;
    icfg.direct.base = cfg;
    dynamic::LabelState state;
    dynamic::IncrementalWorkspace iws;
    dynamic::DeltaScratch scratch;
    dynamic::DeltaApplyResult res;
    BisectWorkspace bws;
    Graph spare;
    std::unique_ptr<ThreadPool> pool;
    const int nthreads = cfg.resolved_threads();
    if (nthreads > 1) pool = std::make_unique<ThreadPool>(nthreads);

    Timer t;
    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
      const std::string aerr =
          dynamic::apply_delta(g, batches[bi], scratch, spare, res);
      if (!aerr.empty()) {
        std::fprintf(stderr, "error: batch %zu: %s\n", bi, aerr.c_str());
        return 1;
      }
      std::swap(g, spare);
      const dynamic::RepartitionResult rr = dynamic::repartition_after_delta(
          g, k, icfg, seed, state, res.fingerprint, scratch.touched,
          res.churn_ratio, iws, &bws, pool.get());
      const char* reason =
          rr.reason == dynamic::RepartitionResult::Reason::kIncremental
              ? "incremental"
          : rr.reason == dynamic::RepartitionResult::Reason::kNoPrevious
              ? "no_previous"
          : rr.reason == dynamic::RepartitionResult::Reason::kChurnRatio
              ? "churn_ratio"
              : "quality_bound";
      std::printf("delta %zu: %d-way edge-cut %lld [%s%s] fingerprint %016llx\n",
                  bi, k, static_cast<long long>(rr.cut),
                  rr.from_scratch ? "scratch:" : "", reason,
                  static_cast<unsigned long long>(res.fingerprint));
    }
    const double secs = t.seconds();
    std::printf("replayed %zu batch(es) in %.3f s\n", batches.size(), secs);

    if (!out_path.empty()) {
      try {
        write_partition_file(out_path, state.part);
        std::printf("partition vector written to %s\n", out_path.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    }
    if (!report_path.empty()) {
      ob.report.tool = "partition_file";
      ob.report.scheme = describe(cfg);
      ob.report.k = k;
      ob.report.threads = cfg.resolved_threads();
      ob.report.seed = seed;
      const obs::MetricsSnapshot snap = ob.metrics.snapshot();
      if (!ob.report.write_json_file(report_path, &snap)) {
        std::fprintf(stderr, "error: could not write report to %s\n",
                     report_path.c_str());
        return 1;
      }
      std::printf("run report written to %s\n", report_path.c_str());
    }
    return 0;
  }

  Rng rng(seed);
  Timer t;
  KwayResult r;
  if (direct) {
    KwayDirectConfig dcfg;
    dcfg.base = cfg;
    r = kway_partition_direct(g, k, dcfg, rng);
    for (int extra = 1; extra < trials; ++extra) {
      KwayResult r2 = kway_partition_direct(g, k, dcfg, rng);
      if (r2.edge_cut < r.edge_cut) r = std::move(r2);
    }
  } else {
    r = kway_partition_best_of(g, k, cfg, trials, rng);
  }
  const double secs = t.seconds();

  PartitionQuality q = evaluate_partition(g, r.part, k);
  std::printf("%d-way: edge-cut %lld, imbalance %.3f, comm volume %lld (%.3f s)\n",
              k, static_cast<long long>(q.edge_cut), q.imbalance,
              static_cast<long long>(q.comm_volume), secs);

  if (!out_path.empty()) {
    try {
      write_partition_file(out_path, r.part);
      std::printf("partition vector written to %s\n", out_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  if (!report_path.empty()) {
    ob.report.tool = "partition_file";
    ob.report.scheme = describe(cfg);
    ob.report.k = k;
    ob.report.threads = cfg.resolved_threads();
    ob.report.seed = seed;
    const obs::MetricsSnapshot snap = ob.metrics.snapshot();
    if (!ob.report.write_json_file(report_path, &snap)) {
      std::fprintf(stderr, "error: could not write report to %s\n",
                   report_path.c_str());
      return 1;
    }
    std::printf("run report written to %s\n", report_path.c_str());
  }
  return 0;
}
