// A complete sparse direct solve — the downstream consumer §4.3's orderings
// exist for.
//
// Assembles the SPD system (Laplacian + I) of a 3D stiffness-pattern mesh,
// orders it three ways (natural, MMD, MLND), factorises numerically, and
// solves, reporting factor size, factorisation time and solution residual.
// The ordering that Figure 5 predicts to be cheapest should factorise
// fastest here — op counts made wall-clock.
//
//   $ ./direct_solver
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "cholesky/sparse_cholesky.hpp"
#include "graph/generators.hpp"
#include "order/mmd.hpp"
#include "order/nested_dissection.hpp"
#include "support/timer.hpp"

using namespace mgp;

namespace {

void solve_with(const char* label, const SymmetricMatrix& a,
                std::span<const vid_t> perm, std::span<const double> x_true) {
  const std::size_t n = static_cast<std::size_t>(a.n);
  SymmetricMatrix pa = permute_matrix(a, perm);

  Timer t;
  CholeskyResult r = cholesky_factorize(pa);
  const double t_factor = t.seconds();
  if (!r.ok) {
    std::printf("  %-8s factorisation failed at column %d\n", label, r.failed_column);
    return;
  }

  // b = A x_true, permuted into the new numbering.
  std::vector<double> b(n, 0.0);
  a.multiply_add(x_true, b);
  std::vector<double> pb(n);
  for (std::size_t i = 0; i < n; ++i) pb[i] = b[static_cast<std::size_t>(perm[i])];

  t.reset();
  r.factor.solve(std::span<double>(pb));
  const double t_solve = t.seconds();

  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err = std::max(err, std::abs(pb[i] - x_true[static_cast<std::size_t>(perm[i])]));
  }
  std::printf("  %-8s nnz(L) %9lld   factor %7.3f s   solve %7.4f s   max err %.2e\n",
              label, static_cast<long long>(r.factor.nnz()), t_factor, t_solve, err);
}

}  // namespace

int main() {
  Graph mesh = grid3d_27(13, 13, 12);
  std::printf("system: n = %d, pattern nnz = %lld (Laplacian + I on a 3D "
              "stiffness mesh)\n",
              mesh.num_vertices(), static_cast<long long>(2 * mesh.num_edges()));
  SymmetricMatrix a = laplacian_matrix(mesh, 1.0);

  Rng rng(1995);
  std::vector<double> x_true(static_cast<std::size_t>(a.n));
  for (double& v : x_true) v = rng.next_double() * 2.0 - 1.0;

  std::vector<vid_t> natural(static_cast<std::size_t>(a.n));
  std::iota(natural.begin(), natural.end(), vid_t{0});
  solve_with("natural", a, natural, x_true);
  solve_with("MMD", a, mmd_order(mesh), x_true);

  MultilevelConfig cfg;
  NdOptions nd;
  solve_with("MLND", a, mlnd_order(mesh, cfg, nd, rng), x_true);

  std::printf("\nFigure 5's symbolic op counts become factorisation seconds "
              "here: the\nordering with fewer predicted ops factorises "
              "faster, at identical accuracy.\n");
  return 0;
}
