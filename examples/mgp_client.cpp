// Client CLI of the partitioning service.
//
//   $ ./mgp_client --socket=/tmp/mgp.sock graph.graph 8 -o out.part
//   $ ./mgp_client --port=7095 --stats
//
// Options mirror partition_file's where they exist, and the defaults are
// identical, so for the same graph, k, and seed the two tools produce the
// same partition bytes — one computed in-process, one over the wire.
//
//   --socket=PATH | --port=N      where the server listens
//   --matching=rm|hem|lem|hcm     matching heuristic         (hem)
//   --coarsen=match|ad|nlevel     coarsening strategy        (match)
//   --init=ggp|gggp|sbp           coarsest-graph partitioner (gggp)
//   --refine=none|gr|klr|bgr|bklr|bklgr   refinement policy  (bklgr)
//   --seed=S                      RNG seed                   (1995)
//   --direct                      force direct k-way (matches
//                                 partition_file --direct byte for byte)
//   --rb                          force recursive bisection even when the
//                                 server's auto threshold would go direct
//   --deadline-ms=N               per-request budget; 0 = none
//   --stats                       print the server's /stats JSON and exit
//   --pin                         pin the graph in the server's GraphStore
//                                 and print its fingerprint
//   --delta-script=FILE           pin the graph, then replay the delta
//                                 script (src/dynamic/delta_script.hpp
//                                 grammar) batch by batch, chaining
//                                 fingerprints; -o writes the final
//                                 labelling — byte-identical to
//                                 `partition_file --delta-script` offline
//   -o FILE                       write the part vector (one id per line)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dynamic/delta_script.hpp"
#include "graph/io.hpp"
#include "graph/partition_io.hpp"
#include "server/client.hpp"

using namespace mgp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket=PATH | --port=N) [--stats] "
               "[<graph(.graph|.mtx)> <k>] [options] [-o out]\n"
               "  --matching=rm|hem|lem|hcm  --coarsen=match|ad|nlevel\n"
               "  --init=ggp|gggp|sbp\n"
               "  --refine=none|gr|klr|bgr|bklr|bklgr\n"
               "  --seed=S  --deadline-ms=N  --direct  --rb\n"
               "  --pin  --delta-script=FILE\n",
               argv0);
  return 2;
}

const char* reason_name(std::uint8_t reason) {
  switch (reason) {
    case 0: return "incremental";
    case 1: return "no_previous";
    case 2: return "churn_ratio";
    case 3: return "quality_bound";
    default: return "unknown";
  }
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool parse_matching(const std::string& v, MatchingScheme& out) {
  if (v == "rm") out = MatchingScheme::kRandom;
  else if (v == "hem") out = MatchingScheme::kHeavyEdge;
  else if (v == "lem") out = MatchingScheme::kLightEdge;
  else if (v == "hcm") out = MatchingScheme::kHeavyClique;
  else return false;
  return true;
}

bool parse_coarsen(const std::string& v, CoarsenStrategy& out) {
  if (v == "match") out = CoarsenStrategy::kMatching;
  else if (v == "ad") out = CoarsenStrategy::kAlgebraicDistance;
  else if (v == "nlevel") out = CoarsenStrategy::kNLevel;
  else return false;
  return true;
}

bool parse_init(const std::string& v, InitPartScheme& out) {
  if (v == "ggp") out = InitPartScheme::kGGP;
  else if (v == "gggp") out = InitPartScheme::kGGGP;
  else if (v == "sbp") out = InitPartScheme::kSpectral;
  else return false;
  return true;
}

bool parse_refine(const std::string& v, RefinePolicy& out) {
  if (v == "none") out = RefinePolicy::kNone;
  else if (v == "gr") out = RefinePolicy::kGR;
  else if (v == "klr") out = RefinePolicy::kKLR;
  else if (v == "bgr") out = RefinePolicy::kBGR;
  else if (v == "bklr") out = RefinePolicy::kBKLR;
  else if (v == "bklgr") out = RefinePolicy::kBKLGR;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::uint16_t port = 0;
  bool have_listen = false, want_stats = false, want_pin = false;
  server::RequestOptions opts;
  std::string graph_path, out_path, delta_path;
  part_t k = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
      have_listen = !socket_path.empty();
    } else if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<std::uint16_t>(std::atoi(arg.c_str() + 7));
      have_listen = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--pin") {
      want_pin = true;
    } else if (arg.rfind("--delta-script=", 0) == 0) {
      delta_path = arg.substr(15);
    } else if (arg.rfind("--matching=", 0) == 0) {
      if (!parse_matching(arg.substr(11), opts.matching)) return usage(argv[0]);
    } else if (arg.rfind("--coarsen=", 0) == 0) {
      if (!parse_coarsen(arg.substr(10), opts.coarsen_strategy)) return usage(argv[0]);
    } else if (arg.rfind("--init=", 0) == 0) {
      if (!parse_init(arg.substr(7), opts.initpart)) return usage(argv[0]);
    } else if (arg.rfind("--refine=", 0) == 0) {
      if (!parse_refine(arg.substr(9), opts.refine)) return usage(argv[0]);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--direct") {
      opts.kway_mode = server::KwayMode::kDirect;
    } else if (arg == "--rb") {
      opts.kway_mode = server::KwayMode::kRecursiveBisection;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      opts.deadline_ms = std::strtoull(arg.c_str() + 14, nullptr, 10);
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (graph_path.empty()) {
      graph_path = arg;
    } else if (k == 0) {
      k = static_cast<part_t>(std::atoi(arg.c_str()));
      if (k < 1) return usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  // --pin alone needs only a graph; --delta-script and plain partitioning
  // also need k.
  const bool pin_only = want_pin && delta_path.empty();
  if (!have_listen ||
      (!want_stats && (graph_path.empty() || (!pin_only && k < 1)))) {
    return usage(argv[0]);
  }

  std::string err;
  server::Client client = socket_path.empty()
                              ? server::Client::connect_tcp("127.0.0.1", port, err)
                              : server::Client::connect_unix(socket_path, err);
  if (!client.connected()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  if (want_stats) {
    std::string json;
    if (!client.stats(json, err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    std::printf("%s\n", json.c_str());
    return 0;
  }

  Graph g;
  try {
    g = ends_with(graph_path, ".mtx") ? read_matrix_market_file(graph_path)
                                      : read_metis_graph_file(graph_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading graph: %s\n", e.what());
    return 1;
  }
  opts.k = k;

  if (want_pin || !delta_path.empty()) {
    const server::Client::PinOutcome p = client.pin(g);
    if (!p.ok()) {
      std::fprintf(stderr, "error: %s (%s)\n",
                   std::string(server::to_string(p.status)).c_str(),
                   p.error.c_str());
      return 1;
    }
    std::printf("pinned: fingerprint %016llx%s\n",
                static_cast<unsigned long long>(p.fingerprint),
                p.already_pinned ? " (already pinned)" : "");
    if (delta_path.empty()) return 0;

    std::vector<dynamic::DeltaBatch> batches;
    const std::string perr = dynamic::parse_delta_script_file(delta_path, batches);
    if (!perr.empty()) {
      std::fprintf(stderr, "error: %s\n", perr.c_str());
      return 1;
    }

    std::uint64_t fp = p.fingerprint;
    server::Client::DeltaOutcome last;
    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
      last = client.delta(fp, batches[bi], opts);
      if (!last.ok()) {
        std::fprintf(stderr, "error: %s (%s)\n",
                     std::string(server::to_string(last.status)).c_str(),
                     last.error.c_str());
        return 1;
      }
      std::printf("delta %zu: %d-way edge-cut %lld [%s%s%s] fingerprint %016llx\n",
                  bi, k, static_cast<long long>(last.edge_cut),
                  last.from_scratch ? "scratch:" : "",
                  reason_name(last.reason), last.cache_hit ? ", cache hit" : "",
                  static_cast<unsigned long long>(last.fingerprint));
      fp = last.fingerprint;
    }
    if (!out_path.empty()) {
      if (batches.empty()) {
        std::fprintf(stderr, "error: delta script has no batches, nothing to write\n");
        return 1;
      }
      try {
        write_partition_file(out_path, last.part);
        std::printf("partition vector written to %s\n", out_path.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    }
    return 0;
  }

  server::PartitionOutcome r = client.partition(g, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s (%s)\n",
                 std::string(server::to_string(r.status)).c_str(), r.error.c_str());
    return 1;
  }
  std::printf("%d-way: edge-cut %lld%s\n", k, static_cast<long long>(r.edge_cut),
              r.cache_hit ? " (cache hit)" : "");
  if (!out_path.empty()) {
    try {
      write_partition_file(out_path, r.part);
      std::printf("partition vector written to %s\n", out_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
