// The paper's opening scenario, end to end: solve Ax = b with an iterative
// method (preconditioned CG) whose per-iteration communication on p
// processors is determined by a graph partition.
//
// Total solver communication = (partition communication volume) x
// (CG iterations).  The example solves one system and prices that product
// under the paper's partitioning scheme vs an unrefined random-matching
// partition — the difference *is* the paper's contribution, in words an
// application engineer would use.
//
//   $ ./iterative_solver [p]
#include <cstdio>
#include <cstdlib>

#include "cholesky/conjugate_gradient.hpp"
#include "core/kway.hpp"
#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"
#include "support/timer.hpp"

using namespace mgp;

int main(int argc, char** argv) {
  const part_t p = argc > 1 ? static_cast<part_t>(std::atoi(argv[1])) : 16;
  Graph mesh = fem3d_tet(16, 16, 16, 77);
  const std::size_t n = static_cast<std::size_t>(mesh.num_vertices());
  std::printf("mesh: %d vertices, %lld edges; solving (L + I) x = b on %d "
              "simulated processors\n",
              mesh.num_vertices(), static_cast<long long>(mesh.num_edges()), p);

  // Solve the system once (the numerics are partition-independent).
  SymmetricMatrix a = laplacian_matrix(mesh, 1.0);
  Rng rng(1995);
  std::vector<double> b(n);
  for (double& v : b) v = rng.next_double();
  std::vector<double> x(n, 0.0);
  Timer t;
  CgResult cg = conjugate_gradient(a, b, std::span<double>(x));
  std::printf("CG: %d iterations to relative residual %.1e (%.3f s)\n",
              cg.iterations, cg.relative_residual, t.seconds());

  // Price the communication under two partitions.
  auto report = [&](const char* label, const KwayResult& part) {
    PartitionQuality q = evaluate_partition(mesh, part.part, p);
    const long long per_iter = q.comm_volume;
    std::printf("  %-22s cut %7lld  comm/iter %7lld  total comm %10lld values\n",
                label, static_cast<long long>(q.edge_cut), per_iter,
                per_iter * cg.iterations);
  };

  Rng r1(1), r2(1);
  MultilevelConfig paper;
  report("paper scheme", kway_partition(mesh, p, paper, r1));
  MultilevelConfig naive;
  naive.matching = MatchingScheme::kRandom;
  naive.refine = RefinePolicy::kNone;
  report("RM, no refinement", kway_partition(mesh, p, naive, r2));

  std::printf("\nEvery CG iteration ships each boundary value to every "
              "neighbouring part;\nthe paper scheme's smaller communication "
              "volume multiplies across all %d iterations.\n",
              cg.iterations);
  return 0;
}
