// Fill-reducing ordering for sparse Cholesky factorisation — the paper's
// §4.3 application.
//
// Orders the pattern of a 3D stiffness matrix three ways (natural, MMD,
// MLND), runs the symbolic factorisation, and prints fill, operation count,
// and the elimination-tree concurrency profile that decides parallel
// factorisation performance.
//
//   $ ./sparse_ordering
#include <cstdio>
#include <numeric>

#include "graph/generators.hpp"
#include "metrics/ordering_metrics.hpp"
#include "order/mmd.hpp"
#include "order/nested_dissection.hpp"

using namespace mgp;

namespace {

void report(const char* label, const Graph& g, std::span<const vid_t> perm) {
  OrderingQuality q = evaluate_ordering(g, perm);
  std::printf("  %-10s nnz(L) %10lld   ops %11s   etree height %5d   avg width %7.1f\n",
              label, static_cast<long long>(q.nnz_factor),
              format_flops(q.flops).c_str(), q.etree_height, q.average_width);
}

}  // namespace

int main() {
  Graph stiffness = grid3d_27(14, 14, 13);
  std::printf("matrix pattern: n = %d, nnz(offdiag) = %lld\n",
              stiffness.num_vertices(),
              static_cast<long long>(2 * stiffness.num_edges()));

  // Natural (identity) ordering: the baseline a naive solver would use.
  std::vector<vid_t> natural(static_cast<std::size_t>(stiffness.num_vertices()));
  std::iota(natural.begin(), natural.end(), vid_t{0});
  report("natural", stiffness, natural);

  // Multiple minimum degree — the serial workhorse (Liu [27]).
  report("MMD", stiffness, mmd_order(stiffness));

  // Multilevel nested dissection — the paper's ordering.
  Rng rng(1995);
  MultilevelConfig cfg;
  NdOptions nd;
  report("MLND", stiffness, mlnd_order(stiffness, cfg, nd, rng));

  std::printf(
      "\nMLND trades a slightly different fill profile for a short, balanced\n"
      "elimination tree: 'avg width' bounds the speedup a parallel\n"
      "factorisation can extract (§4.3).\n");
  return 0;
}
