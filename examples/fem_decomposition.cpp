// Domain decomposition for a parallel iterative solver — the paper's §1
// motivating application.
//
// A sparse system Ax = b solved by a Krylov method on p processors needs
// the matrix's graph split into p balanced pieces with minimal coupling:
// every cut edge is a value exchanged per mat-vec, every boundary vertex a
// halo entry.  This example partitions a 3D stiffness-pattern mesh for
// several processor counts and reports the communication plan a solver
// would derive, comparing the paper's scheme against random matching
// without refinement to show what the machinery buys.
//
//   $ ./fem_decomposition [p]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/kway.hpp"
#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"

using namespace mgp;

namespace {

struct CommPlan {
  std::vector<std::int64_t> halo;      // per part: foreign values received
  std::vector<std::int64_t> interior;  // per part: rows with no communication
};

CommPlan build_comm_plan(const Graph& g, std::span<const part_t> part, part_t k) {
  CommPlan plan;
  plan.halo.assign(static_cast<std::size_t>(k), 0);
  plan.interior.assign(static_cast<std::size_t>(k), 0);
  // halo of part p = number of (foreign vertex, p) pairs with an edge into p.
  std::vector<std::vector<char>> seen(static_cast<std::size_t>(k));
  for (auto& s : seen) s.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const part_t pu = part[static_cast<std::size_t>(u)];
    bool boundary = false;
    for (vid_t v : g.neighbors(u)) {
      const part_t pv = part[static_cast<std::size_t>(v)];
      if (pv == pu) continue;
      boundary = true;
      if (!seen[static_cast<std::size_t>(pv)][static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(pv)][static_cast<std::size_t>(u)] = 1;
        ++plan.halo[static_cast<std::size_t>(pv)];
      }
    }
    if (!boundary) ++plan.interior[static_cast<std::size_t>(pu)];
  }
  return plan;
}

void report(const char* label, const Graph& g, const KwayResult& r, part_t k) {
  PartitionQuality q = evaluate_partition(g, r.part, k);
  CommPlan plan = build_comm_plan(g, r.part, k);
  std::int64_t max_halo = *std::max_element(plan.halo.begin(), plan.halo.end());
  std::int64_t total_halo = 0;
  for (auto h : plan.halo) total_halo += h;
  std::printf(
      "  %-22s cut %7lld  imbal %.3f  total halo %7lld  max halo %6lld\n",
      label, static_cast<long long>(q.edge_cut), q.imbalance,
      static_cast<long long>(total_halo), static_cast<long long>(max_halo));
}

}  // namespace

int main(int argc, char** argv) {
  const part_t p_max = argc > 1 ? static_cast<part_t>(std::atoi(argv[1])) : 16;
  Graph mesh = grid3d_27(20, 20, 18);  // hexahedral stiffness pattern
  std::printf("3D stiffness mesh: %d vertices, %lld edges\n", mesh.num_vertices(),
              static_cast<long long>(mesh.num_edges()));

  for (part_t k = 2; k <= p_max; k *= 2) {
    std::printf("\np = %d processors:\n", k);
    Rng r1(1995), r2(1995);

    MultilevelConfig paper;  // HEM + GGGP + BKLGR
    report("paper scheme", mesh, kway_partition(mesh, k, paper, r1), k);

    MultilevelConfig naive;
    naive.matching = MatchingScheme::kRandom;
    naive.refine = RefinePolicy::kNone;
    report("RM, no refinement", mesh, kway_partition(mesh, k, naive, r2), k);
  }

  std::printf(
      "\nEvery halo entry is one value exchanged per mat-vec; the paper "
      "scheme's smaller cut\ntranslates directly into less communication per "
      "solver iteration.\n");
  return 0;
}
