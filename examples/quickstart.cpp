// Quickstart: partition a mesh into 8 parts with the paper's default
// configuration (HEM coarsening + GGGP initial partitioning + BKLGR
// refinement) and inspect the result.
//
//   $ ./quickstart
#include <cstdio>

#include "core/kway.hpp"
#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"

int main() {
  using namespace mgp;

  // 1. Get a graph.  Here: a synthetic 2D finite-element mesh; real
  //    applications load one with read_metis_graph_file() or build one
  //    edge-by-edge with GraphBuilder.
  Graph mesh = fem2d_tri(64, 64, /*seed=*/42);
  std::printf("mesh: %d vertices, %lld edges\n", mesh.num_vertices(),
              static_cast<long long>(mesh.num_edges()));

  // 2. Partition.  MultilevelConfig's defaults are the paper's recommended
  //    scheme; everything (matching, initial partitioning, refinement) is a
  //    config knob.
  MultilevelConfig config;           // = HEM + GGGP + BKLGR
  Rng rng(/*seed=*/1995);            // all randomness is explicit
  const part_t k = 8;
  KwayResult result = kway_partition(mesh, k, config, rng);

  // 3. Inspect.
  PartitionQuality q = evaluate_partition(mesh, result.part, k);
  std::printf("%d-way partition: edge-cut %lld, imbalance %.3f\n", k,
              static_cast<long long>(q.edge_cut), q.imbalance);
  std::printf("boundary vertices: %d, communication volume: %lld\n",
              q.boundary_vertices, static_cast<long long>(q.comm_volume));
  std::printf("part weights: min %lld, max %lld (ideal %lld)\n",
              static_cast<long long>(q.min_part_weight),
              static_cast<long long>(q.max_part_weight),
              static_cast<long long>(mesh.total_vertex_weight() / k));

  // 4. The labels themselves: result.part[v] is the part of vertex v.
  std::printf("vertex 0 -> part %d, vertex %d -> part %d\n", result.part[0],
              mesh.num_vertices() - 1,
              result.part[static_cast<std::size_t>(mesh.num_vertices() - 1)]);
  return 0;
}
