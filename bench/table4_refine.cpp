// Reproduces Table 4: the five refinement policies (GR, KLR, BGR, BKLR,
// BKLGR) under HEM coarsening and GGGP initial partitioning — 32-way
// edge-cut and refinement time.
//
// Expected shape (paper): edge-cuts within ~15% of the best policy per
// graph; KLR needs the most time, BGR the least; BKLR's cut beats BGR's
// slightly at higher cost; BKLGR lands within ~2% of BKLR at a fraction of
// its time.  "A relatively small decrease in the edge-cut usually comes at
// a significant increase in the time required to perform the refinement."
#include <cstdio>

#include "common.hpp"
#include "core/kway.hpp"
#include "support/timer.hpp"

using namespace mgp;
using namespace mgp::bench;

int main(int argc, char** argv) {
  ObsSession session(argc, argv, "table4_refine");
  print_banner("Table 4: refinement policies, 32-way partition (HEM + GGGP fixed)",
               "cut spread <= ~15-35%; RTime: KLR >> GR, BKLR > BKLGR > BGR");

  const part_t k = 32;
  session.describe_run("HEM+GGGP+{GR,KLR,BGR,BKLR,BKLGR}", k, 1, seed_from_env());
  auto suite = load_suite(SuiteKind::kTables, 0.3);
  const RefinePolicy policies[] = {RefinePolicy::kGR, RefinePolicy::kKLR,
                                   RefinePolicy::kBGR, RefinePolicy::kBKLR,
                                   RefinePolicy::kBKLGR};

  std::printf("\n%s", pad("graph", 6).c_str());
  for (RefinePolicy p : policies) std::printf(" | %s", pad(to_string(p), 17).c_str());
  std::printf("\n%s", pad("", 6).c_str());
  for (int i = 0; i < 5; ++i) std::printf(" | %8s %8s", "32EC", "RTime");
  std::printf("\n");

  for (const auto& ng : suite) {
    std::printf("%s", pad(ng.name, 6).c_str());
    for (RefinePolicy p : policies) {
      MultilevelConfig cfg;
      cfg.matching = MatchingScheme::kHeavyEdge;
      cfg.initpart = InitPartScheme::kGGGP;
      cfg.refine = p;
      session.attach(cfg);
      Rng rng(seed_from_env());
      PhaseTimers timers;
      KwayResult r = kway_partition(ng.graph, k, cfg, rng, &timers);
      std::printf("%s", fmt_cut_time_cell(static_cast<long long>(r.edge_cut),
                                          timers.get(PhaseTimers::kRefine))
                            .c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
