// Reproduces Table 3: 32-way edge-cut when *no refinement* is performed —
// the final edge-cut equals the initial partition of the coarsest graph
// projected back unchanged.  This isolates the quality of each coarsening
// scheme's hierarchy.
//
// Expected shape (paper): HEM's unrefined cut is far below RM's and
// massively below LEM's (LEM often 5-30x worse); HCM close to HEM.  This is
// the paper's core evidence that heavy-edge coarsening produces coarse
// graphs whose partitions are "within a small factor of the size of the
// final partition."
#include <cstdio>

#include "common.hpp"
#include "core/kway.hpp"

using namespace mgp;
using namespace mgp::bench;

int main(int argc, char** argv) {
  ObsSession session(argc, argv, "table3_noref");
  print_banner("Table 3: 32-way edge-cut with no refinement, per matching scheme",
               "HEM << RM << LEM; HCM comparable to HEM");

  const part_t k = 32;
  session.describe_run("{RM,HEM,LEM,HCM}+GGGP+none", k, 1, seed_from_env());
  auto suite = load_suite(SuiteKind::kTables, 0.3);
  const MatchingScheme schemes[] = {MatchingScheme::kRandom, MatchingScheme::kHeavyEdge,
                                    MatchingScheme::kLightEdge,
                                    MatchingScheme::kHeavyClique};

  std::printf("\n%s %10s %10s %10s %10s   %s\n", pad("graph", 6).c_str(), "RM", "HEM",
              "LEM", "HCM", "LEM/HEM");
  for (const auto& ng : suite) {
    ewt_t cut[4];
    int i = 0;
    for (MatchingScheme m : schemes) {
      MultilevelConfig cfg;
      cfg.matching = m;
      cfg.initpart = InitPartScheme::kGGGP;
      cfg.refine = RefinePolicy::kNone;
      session.attach(cfg);
      Rng rng(seed_from_env());
      cut[i++] = kway_partition(ng.graph, k, cfg, rng).edge_cut;
    }
    std::printf("%s %10lld %10lld %10lld %10lld   %7.2f\n", pad(ng.name, 6).c_str(),
                static_cast<long long>(cut[0]), static_cast<long long>(cut[1]),
                static_cast<long long>(cut[2]), static_cast<long long>(cut[3]),
                cut[1] > 0 ? static_cast<double>(cut[2]) / static_cast<double>(cut[1])
                           : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
