// Reproduces Figure 4: run time of Chaco-ML, MSB and MSB-KL *relative to
// our multilevel algorithm* for a 256-way partition.
//
// Expected shape (paper): ours fastest everywhere; MSB 10-35x slower
// (growing with problem size), MSB-KL slower still, Chaco-ML 2-6x slower.
#include <cstdio>

#include "common.hpp"
#include "core/chaco_ml.hpp"
#include "core/kway.hpp"
#include "spectral/msb.hpp"
#include "support/timer.hpp"

using namespace mgp;
using namespace mgp::bench;

int main(int argc, char** argv) {
  ObsSession session(argc, argv, "fig4_runtime");
  print_banner("Figure 4: run time relative to our multilevel, 256-way partition",
               "ours = 1.0; Chaco-ML ~2-6x; MSB ~10-35x; MSB-KL >= MSB");

  const part_t k = 256;
  session.describe_run("HEM+GGGP+BKLGR", k, 1, seed_from_env());
  auto suite = load_suite(SuiteKind::kFigures, 0.05);

  std::printf("\n%s %9s | %9s | %9s %9s %9s   (multiples of our time)\n",
              pad("graph", 6).c_str(), "|V|", "ours (s)", "Chaco-ML", "MSB",
              "MSB-KL");
  for (const auto& ng : suite) {
    Timer t;
    Rng r1(seed_from_env());
    MultilevelConfig ours;
    session.attach(ours);
    kway_partition(ng.graph, k, ours, r1);
    const double t_ours = t.seconds();

    t.reset();
    Rng r2(seed_from_env());
    chaco_ml_partition(ng.graph, k, r2);
    const double t_chaco = t.seconds();

    t.reset();
    Rng r3(seed_from_env());
    MsbOptions msb;
    msb_partition(ng.graph, k, msb, r3);
    const double t_msb = t.seconds();

    t.reset();
    Rng r4(seed_from_env());
    MsbOptions msbkl;
    msbkl.kl_refine = true;
    msb_partition(ng.graph, k, msbkl, r4);
    const double t_msbkl = t.seconds();

    std::printf("%s %9lld | %9.3f | %9.2f %9.2f %9.2f\n", pad(ng.name, 6).c_str(),
                static_cast<long long>(ng.graph.num_vertices()), t_ours,
                t_chaco / t_ours, t_msb / t_ours, t_msbkl / t_ours);
    std::fflush(stdout);
  }
  return 0;
}
