#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/trace.hpp"

namespace mgp::bench {

double scale_from_env(double def) {
  const char* s = std::getenv("MGP_BENCH_SCALE");
  if (!s) return def;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  return (end != s && v > 0) ? v : def;
}

std::uint64_t seed_from_env() {
  const char* s = std::getenv("MGP_BENCH_SEED");
  if (!s) return 1995;
  return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
}

std::vector<NamedGraph> load_suite(SuiteKind kind, double default_scale) {
  const double scale = scale_from_env(default_scale);
  const std::uint64_t seed = seed_from_env();
  std::printf("suite scale=%.3g seed=%llu (override with MGP_BENCH_SCALE / MGP_BENCH_SEED)\n",
              scale, static_cast<unsigned long long>(seed));
  return paper_suite(kind, scale, seed);
}

void print_banner(const std::string& artifact, const std::string& expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

std::string pad(const std::string& s, int width) {
  std::string out = s;
  while (static_cast<int>(out.size()) < width) out.push_back(' ');
  return out;
}

std::string fmt_int(long long v, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%*lld", width, v);
  return buf;
}

std::string fmt_time(double seconds, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%*.3f", width, seconds);
  return buf;
}

std::string fmt_ratio(double r, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%*.3f", width, r);
  return buf;
}

std::string fmt_cut_time_cell(long long cut, double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " | %8lld %8.3f", cut, seconds);
  return buf;
}

namespace {

/// Pops the value following `flag` out of argv, or empty when absent.
std::string consume_flag(int& argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      std::string value = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return value;
    }
  }
  return {};
}

}  // namespace

ObsSession::ObsSession(int& argc, char** argv, std::string tool)
    : tool_(std::move(tool)),
      trace_path_(consume_flag(argc, argv, "--trace")),
      report_path_(consume_flag(argc, argv, "--report")) {
  if (!report_path_.empty()) {
    obs_ = std::make_unique<obs::Obs>();
    obs_->report.tool = tool_;
  }
  if (!trace_path_.empty()) {
    if (!obs::kObsCompiled) {
      std::fprintf(stderr,
                   "[%s] warning: --trace given but the library was built "
                   "with MGP_OBS=OFF; the trace will be empty\n",
                   tool_.c_str());
    }
    obs::set_thread_name("main");
    obs::trace_start();
  }
}

ObsSession::~ObsSession() { finish(); }

void ObsSession::attach(MultilevelConfig& cfg) {
  if (obs_) cfg.obs = obs_.get();
}

void ObsSession::describe_run(const std::string& scheme, int k, int threads,
                              std::uint64_t seed) {
  if (!obs_) return;
  obs_->report.scheme = scheme;
  obs_->report.k = k;
  obs_->report.threads = threads;
  obs_->report.seed = seed;
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (!trace_path_.empty()) {
    obs::trace_stop();
    if (obs::trace_write_chrome(trace_path_)) {
      std::printf("[%s] wrote trace (%zu events) to %s\n", tool_.c_str(),
                  obs::trace_event_count(), trace_path_.c_str());
    } else {
      std::fprintf(stderr, "[%s] FAILED to write trace to %s\n", tool_.c_str(),
                   trace_path_.c_str());
    }
  }
  if (obs_) {
    const obs::MetricsSnapshot snap = obs_->metrics.snapshot();
    if (obs_->report.write_json_file(report_path_, &snap)) {
      std::printf("[%s] wrote report (%zu bisections) to %s\n", tool_.c_str(),
                  obs_->report.num_bisections(), report_path_.c_str());
    } else {
      std::fprintf(stderr, "[%s] FAILED to write report to %s\n", tool_.c_str(),
                   report_path_.c_str());
    }
  }
}

}  // namespace mgp::bench
