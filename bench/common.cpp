#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mgp::bench {

double scale_from_env(double def) {
  const char* s = std::getenv("MGP_BENCH_SCALE");
  if (!s) return def;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  return (end != s && v > 0) ? v : def;
}

std::uint64_t seed_from_env() {
  const char* s = std::getenv("MGP_BENCH_SEED");
  if (!s) return 1995;
  return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
}

std::vector<NamedGraph> load_suite(SuiteKind kind, double default_scale) {
  const double scale = scale_from_env(default_scale);
  const std::uint64_t seed = seed_from_env();
  std::printf("suite scale=%.3g seed=%llu (override with MGP_BENCH_SCALE / MGP_BENCH_SEED)\n",
              scale, static_cast<unsigned long long>(seed));
  return paper_suite(kind, scale, seed);
}

void print_banner(const std::string& artifact, const std::string& expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

std::string pad(const std::string& s, int width) {
  std::string out = s;
  while (static_cast<int>(out.size()) < width) out.push_back(' ');
  return out;
}

std::string fmt_int(long long v, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%*lld", width, v);
  return buf;
}

std::string fmt_time(double seconds, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%*.3f", width, seconds);
  return buf;
}

std::string fmt_ratio(double r, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%*.3f", width, r);
  return buf;
}

}  // namespace mgp::bench
