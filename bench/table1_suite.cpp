// Reproduces Table 1: the matrix/graph test suite.
//
// Paper: 24 Boeing-Harwell / NASA matrices with their orders and nonzero
// counts.  Ours: the synthetic stand-in suite (see DESIGN.md §1.4), printed
// with the paper mnemonic, the generator used, and the actual sizes.
#include <cstdio>

#include "common.hpp"

using namespace mgp;
using namespace mgp::bench;

namespace {

void print_suite(const char* title, SuiteKind kind, double scale) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%s %10s %12s  %-26s %s\n", pad("Name", 6).c_str(), "Vertices",
              "Edges", "Description", "Generator (stand-in)");
  auto suite = paper_suite(kind, scale, seed_from_env());
  for (const auto& ng : suite) {
    std::printf("%s %10lld %12lld  %-26s %s\n", pad(ng.name, 6).c_str(),
                static_cast<long long>(ng.graph.num_vertices()),
                static_cast<long long>(ng.graph.num_edges()),
                ng.description.c_str(), ng.stands_in_for.c_str());
  }
}

}  // namespace

int main() {
  print_banner("Table 1: graphs used in evaluating the multilevel algorithms",
               "suite spans 2D/3D FEM, stiffness, power, LP, circuit and CFD "
               "graph classes, mirroring the paper's 24 matrices");
  const double scale = scale_from_env(0.3);
  std::printf("suite scale=%.3g (1.0 = paper-magnitude sizes)\n", scale);
  print_suite("Tables 2-4 subset (12 graphs)", SuiteKind::kTables, scale);
  print_suite("Figures 1-4 subset (16 graphs)", SuiteKind::kFigures, scale);
  print_suite("Figure 5 ordering subset (18 graphs)", SuiteKind::kOrdering, scale);
  return 0;
}
