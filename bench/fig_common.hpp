// Shared driver for Figures 1-3: edge-cut of our multilevel algorithm
// relative to a baseline partitioner, for k = 64, 128, 256 on the
// figure suite.  Ratios < 1 mean our algorithm wins (bars under the
// baseline in the paper's plots).
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "common.hpp"
#include "core/kway.hpp"

namespace mgp::bench {

using KwayRunner = std::function<KwayResult(const Graph&, part_t, Rng&)>;

inline int run_cut_ratio_figure(const std::string& artifact,
                                const std::string& expectation,
                                const std::string& baseline_name,
                                const KwayRunner& baseline,
                                double default_scale = 0.05,
                                ObsSession* session = nullptr) {
  print_banner(artifact, expectation);
  if (session) {
    session->describe_run("HEM+GGGP+BKLGR", 256, 1, seed_from_env());
  }
  auto suite = load_suite(SuiteKind::kFigures, default_scale);

  const part_t ks[] = {64, 128, 256};
  std::printf("\nratio = ours(HEM+GGGP+BKLGR) / %s;  < 1.0 means ours is better\n",
              baseline_name.c_str());
  std::printf("%s %9s | %10s %10s %10s | %10s %10s %10s\n", pad("graph", 6).c_str(),
              "|V|", "ours k=64", "k=128", "k=256", "ratio 64", "ratio 128",
              "ratio 256");

  double geo_sum = 0;
  int geo_n = 0;
  for (const auto& ng : suite) {
    ewt_t ours_cut[3], base_cut[3];
    for (int i = 0; i < 3; ++i) {
      MultilevelConfig cfg;
      if (session) session->attach(cfg);
      Rng r1(seed_from_env());
      ours_cut[i] = kway_partition(ng.graph, ks[i], cfg, r1).edge_cut;
      Rng r2(seed_from_env());
      base_cut[i] = baseline(ng.graph, ks[i], r2).edge_cut;
    }
    std::printf("%s %9lld | %10lld %10lld %10lld |", pad(ng.name, 6).c_str(),
                static_cast<long long>(ng.graph.num_vertices()),
                static_cast<long long>(ours_cut[0]),
                static_cast<long long>(ours_cut[1]),
                static_cast<long long>(ours_cut[2]));
    for (int i = 0; i < 3; ++i) {
      double ratio = base_cut[i] > 0 ? static_cast<double>(ours_cut[i]) /
                                           static_cast<double>(base_cut[i])
                                     : 1.0;
      std::printf(" %s", fmt_ratio(ratio, 10).c_str());
      geo_sum += ratio;
      ++geo_n;
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nmean ratio over all graphs/k: %.3f (< 1.0 reproduces the figure)\n",
              geo_sum / geo_n);
  return 0;
}

}  // namespace mgp::bench
