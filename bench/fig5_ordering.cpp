// Reproduces Figure 5: quality of multilevel nested dissection (MLND)
// relative to multiple minimum degree (MMD) and spectral nested dissection
// (SND), measured as Cholesky factorisation operation counts, plus the
// §4.3 concurrency comparison.
//
// Expected shape (paper): bars above 1.0 mean MLND wins.  MLND beats SND on
// 17/18 matrices (SND total ~30% more ops); MLND beats MMD on the larger /
// less structured problems (2-3x on big 3D meshes) while MMD wins some
// small ones; the power grid is bad for every nested-dissection scheme.
// MLND elimination trees are shorter and wider than MMD's.
#include <cstdio>

#include "common.hpp"
#include "metrics/ordering_metrics.hpp"
#include "order/mmd.hpp"
#include "order/nested_dissection.hpp"

using namespace mgp;
using namespace mgp::bench;

int main() {
  print_banner(
      "Figure 5: MLND vs MMD and SND fill-reducing orderings (op counts)",
      "MMD/MLND > 1 on large 3D meshes; SND/MLND > 1 almost everywhere; "
      "power grid poor for all ND schemes; MLND etrees shorter+wider than MMD");

  auto suite = load_suite(SuiteKind::kOrdering, 0.15);

  std::printf("\n%s %9s | %11s %11s %11s | %7s %7s | %6s %6s | %8s %8s\n",
              pad("graph", 6).c_str(), "|V|", "MLND ops", "MMD ops", "SND ops",
              "MMD/ML", "SND/ML", "h(ML)", "h(MMD)", "wid(ML)", "wid(MMD)");

  std::int64_t total_mlnd = 0, total_mmd = 0, total_snd = 0;
  for (const auto& ng : suite) {
    Rng r1(seed_from_env());
    MultilevelConfig cfg;
    NdOptions nd;
    OrderingQuality mlnd = evaluate_ordering(ng.graph, mlnd_order(ng.graph, cfg, nd, r1));

    OrderingQuality mmd = evaluate_ordering(ng.graph, mmd_order(ng.graph));

    Rng r2(seed_from_env());
    MsbOptions msb;
    OrderingQuality snd = evaluate_ordering(ng.graph, snd_order(ng.graph, msb, nd, r2));

    total_mlnd += mlnd.flops;
    total_mmd += mmd.flops;
    total_snd += snd.flops;

    std::printf("%s %9lld | %11s %11s %11s | %7.2f %7.2f | %6d %6d | %8.1f %8.1f\n",
                pad(ng.name, 6).c_str(),
                static_cast<long long>(ng.graph.num_vertices()),
                format_flops(mlnd.flops).c_str(), format_flops(mmd.flops).c_str(),
                format_flops(snd.flops).c_str(),
                static_cast<double>(mmd.flops) / static_cast<double>(mlnd.flops),
                static_cast<double>(snd.flops) / static_cast<double>(mlnd.flops),
                mlnd.etree_height, mmd.etree_height, mlnd.average_width,
                mmd.average_width);
    std::fflush(stdout);
  }

  std::printf("\ntotals: MLND %s ops, MMD %s ops (x%.2f), SND %s ops (x%.2f)\n",
              format_flops(total_mlnd).c_str(), format_flops(total_mmd).c_str(),
              static_cast<double>(total_mmd) / static_cast<double>(total_mlnd),
              format_flops(total_snd).c_str(),
              static_cast<double>(total_snd) / static_cast<double>(total_mlnd));
  std::printf("(paper: ensemble factorable ~2.4x faster with MLND than MMD; SND ~1.3x MLND)\n");
  return 0;
}
