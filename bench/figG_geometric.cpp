// Reproduces the §1 taxonomy claim about geometric partitioners (refs
// [17, 28, 29]): "Geometric partitioning algorithms tend to be fast but
// often yield partitions that are worse than those obtained by spectral
// methods" — and a fortiori worse than the paper's multilevel scheme.
//
// Compares coordinate bisection, inertial bisection, MSB and our multilevel
// algorithm on embedded meshes (the graph classes where geometry exists at
// all): 32-way edge-cut and wall time.
//
// Expected shape: geometric methods orders of magnitude faster than MSB and
// faster than ours, with clearly worse cuts (worst on the unstructured
// meshes); ours best or tied on cut.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/kway.hpp"
#include "geom/delaunay.hpp"
#include "geom/geometric_bisect.hpp"
#include "spectral/msb.hpp"
#include "support/timer.hpp"

using namespace mgp;
using namespace mgp::bench;

int main() {
  print_banner("Figure G (§1 claim): geometric vs spectral vs multilevel",
               "geometric fastest everywhere and competitive on lattice-embedded "
               "meshes (axis cuts are optimal there), but clearly worse on the "
               "irregular point cloud (RGG2D); MSB slowest by far");

  const part_t k = 32;
  const double scale = scale_from_env(0.15);
  const std::uint64_t seed = seed_from_env();
  const double s2 = std::sqrt(scale), s3 = std::cbrt(scale);
  auto dim = [](double v) { return static_cast<vid_t>(v); };

  struct Entry {
    const char* name;
    EmbeddedGraph eg;
  };
  Entry entries[] = {
      {"GRID2", embedded_grid2d(dim(160 * s2) + 2, dim(160 * s2) + 2)},
      {"FEM2D", embedded_fem2d_tri(dim(125 * s2) + 2, dim(125 * s2) + 2, seed)},
      {"GRID3", embedded_grid3d(dim(30 * s3) + 2, dim(30 * s3) + 2, dim(30 * s3) + 2)},
      {"STIF3", embedded_grid3d_27(dim(36 * s3) + 2, dim(35 * s3) + 2, dim(35 * s3) + 2)},
      {"TET3D", embedded_fem3d_tet(dim(40 * s3) + 2, dim(40 * s3) + 2, dim(39 * s3) + 2, seed)},
      {"RGG2D", embedded_random_geometric(dim(30000 * scale) + 10, 8.0, seed)},
      {"DELA", delaunay_mesh(dim(15000 * scale) + 10, seed)},
  };

  std::printf("\n%s %9s | %9s %7s | %9s %7s | %9s %7s | %9s %7s\n",
              pad("graph", 6).c_str(), "|V|", "coord", "time", "inertial", "time",
              "ours", "time", "MSB", "time");
  for (auto& e : entries) {
    Timer t;
    GeometricKwayResult coord =
        geometric_partition(e.eg.graph, e.eg.coords, k, GeometricMethod::kCoordinate);
    const double t_coord = t.seconds();

    t.reset();
    GeometricKwayResult inert =
        geometric_partition(e.eg.graph, e.eg.coords, k, GeometricMethod::kInertial);
    const double t_inert = t.seconds();

    t.reset();
    Rng r1(seed);
    MultilevelConfig cfg;
    KwayResult ours = kway_partition(e.eg.graph, k, cfg, r1);
    const double t_ours = t.seconds();

    t.reset();
    Rng r2(seed);
    MsbOptions msb;
    KwayResult spectral = msb_partition(e.eg.graph, k, msb, r2);
    const double t_msb = t.seconds();

    std::printf("%s %9lld | %9lld %7.3f | %9lld %7.3f | %9lld %7.3f | %9lld %7.3f\n",
                pad(e.name, 6).c_str(),
                static_cast<long long>(e.eg.graph.num_vertices()),
                static_cast<long long>(coord.edge_cut), t_coord,
                static_cast<long long>(inert.edge_cut), t_inert,
                static_cast<long long>(ours.edge_cut), t_ours,
                static_cast<long long>(spectral.edge_cut), t_msb);
    std::fflush(stdout);
  }
  return 0;
}
