// Ablation benches for the design choices DESIGN.md calls out:
//   1. minimum-vertex-cover separators (ref [31]) vs naive boundary
//      separators inside MLND — the paper: "the minimum vertex cover has
//      been found to produce very small vertex separators";
//   2. MMD's multiple elimination and supervariable merging — speed tricks
//      that must not change the quality class.
#include <cstdio>

#include "common.hpp"
#include "metrics/ordering_metrics.hpp"
#include "order/mmd.hpp"
#include "order/nested_dissection.hpp"
#include "support/timer.hpp"

using namespace mgp;
using namespace mgp::bench;

int main() {
  print_banner("Ablation: separator extraction and MMD engineering choices",
               "min-cover <= boundary separator ops; MMD variants same "
               "quality class, multiple+supervariables fastest");

  auto suite = load_suite(SuiteKind::kOrdering, 0.08);

  std::printf("\n-- MLND separator ablation --\n");
  std::printf("%s | %11s %11s | %7s\n", pad("graph", 6).c_str(), "mincover ops",
              "boundary ops", "ratio");
  for (const auto& ng : suite) {
    MultilevelConfig cfg;
    NdOptions mincover;
    NdOptions boundary;
    boundary.boundary_separator = true;
    Rng r1(seed_from_env()), r2(seed_from_env());
    std::int64_t f_mc =
        evaluate_ordering(ng.graph, mlnd_order(ng.graph, cfg, mincover, r1)).flops;
    std::int64_t f_bd =
        evaluate_ordering(ng.graph, mlnd_order(ng.graph, cfg, boundary, r2)).flops;
    std::printf("%s | %11s %11s | %7.3f\n", pad(ng.name, 6).c_str(),
                format_flops(f_mc).c_str(), format_flops(f_bd).c_str(),
                static_cast<double>(f_bd) / static_cast<double>(f_mc));
    std::fflush(stdout);
  }

  std::printf("\n-- MMD variant ablation --\n");
  std::printf("%s | %11s %8s | %11s %8s | %11s %8s\n", pad("graph", 6).c_str(),
              "full ops", "time", "no-multi ops", "time", "no-superv ops", "time");
  for (const auto& ng : suite) {
    auto run = [&](bool multiple, bool superv) {
      MmdOptions opts;
      opts.multiple = multiple;
      opts.supervariables = superv;
      Timer t;
      std::vector<vid_t> perm = mmd_order(ng.graph, opts);
      double secs = t.seconds();
      return std::pair<std::int64_t, double>(evaluate_ordering(ng.graph, perm).flops,
                                             secs);
    };
    auto [f_full, t_full] = run(true, true);
    auto [f_nm, t_nm] = run(false, true);
    auto [f_ns, t_ns] = run(true, false);
    std::printf("%s | %11s %8.3f | %11s %8.3f | %11s %8.3f\n", pad(ng.name, 6).c_str(),
                format_flops(f_full).c_str(), t_full, format_flops(f_nm).c_str(), t_nm,
                format_flops(f_ns).c_str(), t_ns);
    std::fflush(stdout);
  }
  return 0;
}
