// Shared infrastructure for the table/figure reproduction binaries.
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic stand-in suite (DESIGN.md §1.4).  Scale and seed can be
// overridden via environment variables so the same binaries serve quick
// smoke runs and full-size reproductions:
//
//   MGP_BENCH_SCALE  vertex-count factor relative to the paper's sizes
//                    (default per binary, typically 0.05)
//   MGP_BENCH_SEED   RNG seed (default 1995, the paper's year)
//
// Binaries that construct an ObsSession additionally accept
//
//   --trace <file>   write a Chrome trace-event JSON (opens in Perfetto)
//   --report <file>  write a structured RunReport JSON
//                    (schema/run_report.schema.json)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "graph/generators.hpp"
#include "obs/report.hpp"

namespace mgp::bench {

/// Reads MGP_BENCH_SCALE (falls back to `def`).
double scale_from_env(double def);

/// Reads MGP_BENCH_SEED (falls back to 1995).
std::uint64_t seed_from_env();

/// Loads a suite at the env-controlled scale, printing a one-line banner.
std::vector<NamedGraph> load_suite(SuiteKind kind, double default_scale);

/// Prints the standard bench header: what paper artifact this reproduces
/// and what the expected shape of the result is.
void print_banner(const std::string& artifact, const std::string& expectation);

/// Fixed-width helpers for table rows.
std::string pad(const std::string& s, int width);
std::string fmt_int(long long v, int width);
std::string fmt_time(double seconds, int width);
std::string fmt_ratio(double r, int width);

/// The " | <cut> <seconds>" cell shared by the per-scheme sweep tables
/// (Table 4, Table A): an 8-wide edge-cut and an 8-wide phase time.
std::string fmt_cut_time_cell(long long cut, double seconds);

/// Command-line observability for a bench binary: parses `--trace <file>` /
/// `--report <file>` out of argv (consuming both tokens), owns the obs::Obs
/// context, and writes the requested files in finish() / the destructor.
///
///   ObsSession session(argc, argv, "table4_refine");
///   ...
///   session.attach(cfg);          // per config used for partitioning
///   session.describe_run(describe(cfg), k, threads, seed);
///
/// With neither flag given the session is inert: attach() leaves cfg.obs
/// null and finish() writes nothing.  --trace additionally starts span
/// recording for the binary's whole lifetime (a warning is printed when the
/// library was compiled with MGP_OBS=OFF, where spans are no-ops).
class ObsSession {
 public:
  ObsSession(int& argc, char** argv, std::string tool);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// True when --report was given (an Obs context is collecting).
  bool active() const { return obs_ != nullptr; }
  obs::Obs* obs() { return obs_.get(); }

  /// Points cfg.obs at the session's context.  No-op when inactive.
  void attach(MultilevelConfig& cfg);

  /// Stamps run metadata into the report (last call wins).
  void describe_run(const std::string& scheme, int k, int threads,
                    std::uint64_t seed);

  /// Stops tracing and writes the requested files; idempotent.
  void finish();

 private:
  std::string tool_;
  std::string trace_path_;
  std::string report_path_;
  std::unique_ptr<obs::Obs> obs_;
  bool finished_ = false;
};

}  // namespace mgp::bench
