// Shared infrastructure for the table/figure reproduction binaries.
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic stand-in suite (DESIGN.md §1.4).  Scale and seed can be
// overridden via environment variables so the same binaries serve quick
// smoke runs and full-size reproductions:
//
//   MGP_BENCH_SCALE  vertex-count factor relative to the paper's sizes
//                    (default per binary, typically 0.05)
//   MGP_BENCH_SEED   RNG seed (default 1995, the paper's year)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace mgp::bench {

/// Reads MGP_BENCH_SCALE (falls back to `def`).
double scale_from_env(double def);

/// Reads MGP_BENCH_SEED (falls back to 1995).
std::uint64_t seed_from_env();

/// Loads a suite at the env-controlled scale, printing a one-line banner.
std::vector<NamedGraph> load_suite(SuiteKind kind, double default_scale);

/// Prints the standard bench header: what paper artifact this reproduces
/// and what the expected shape of the result is.
void print_banner(const std::string& artifact, const std::string& expectation);

/// Fixed-width helpers for table rows.
std::string pad(const std::string& s, int width);
std::string fmt_int(long long v, int width);
std::string fmt_time(double seconds, int width);
std::string fmt_ratio(double r, int width);

}  // namespace mgp::bench
