// Reproduces the §3.2 initial-partitioning comparison (detailed in the
// companion tech report [22]): GGP vs GGGP vs spectral bisection of the
// coarsest graph, with HEM coarsening and BKLGR refinement fixed.
//
// Expected shape (paper): "GGGP consistently finds smaller edge-cuts than
// the other schemes at slightly better run time. Furthermore, there is no
// advantage in choosing spectral bisection for partitioning the coarse
// graph."
#include <cstdio>

#include "common.hpp"
#include "core/kway.hpp"
#include "support/timer.hpp"

using namespace mgp;
using namespace mgp::bench;

int main(int argc, char** argv) {
  ObsSession session(argc, argv, "tableA_initpart");
  print_banner("Table A (§3.2 / [22]): initial partitioning of the coarsest graph",
               "GGGP <= GGP and SBP in cut; ITime: SBP highest");

  const part_t k = 32;
  session.describe_run("HEM+{GGP,GGGP,SBP}+BKLGR", k, 1, seed_from_env());
  auto suite = load_suite(SuiteKind::kTables, 0.3);
  const InitPartScheme schemes[] = {InitPartScheme::kGGP, InitPartScheme::kGGGP,
                                    InitPartScheme::kSpectral};

  std::printf("\n%s", pad("graph", 6).c_str());
  for (InitPartScheme s : schemes) std::printf(" | %s", pad(to_string(s), 17).c_str());
  std::printf("\n%s", pad("", 6).c_str());
  for (int i = 0; i < 3; ++i) std::printf(" | %8s %8s", "32EC", "ITime");
  std::printf("\n");

  for (const auto& ng : suite) {
    std::printf("%s", pad(ng.name, 6).c_str());
    for (InitPartScheme s : schemes) {
      MultilevelConfig cfg;
      cfg.initpart = s;
      session.attach(cfg);
      Rng rng(seed_from_env());
      PhaseTimers timers;
      KwayResult r = kway_partition(ng.graph, k, cfg, rng, &timers);
      std::printf("%s", fmt_cut_time_cell(static_cast<long long>(r.edge_cut),
                                          timers.get(PhaseTimers::kInitPart))
                            .c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
