// Speedup curves for the parallel multilevel pipeline (extension).
//
// §1: "the coarsening phase of these methods is easy to parallelize" — this
// harness measures how much that (plus parallel contraction and the
// fork/join recursive-bisection tree) buys end to end.  For each thread
// count it times (a) standalone coarsening kernels (matching + contraction)
// and (b) the full k-way partition, and prints speedup over the 1-thread
// run of the *same* parallel pipeline plus the sequential baseline.
//
// Partitions are byte-identical across the thread counts by construction
// (the determinism suite asserts it); the edge-cut column makes that
// visible — it must not move.
//
//   MGP_BENCH_THREADS  comma-free max thread count to sweep (default: 8,
//                      capped to twice the hardware concurrency)
//   MGP_BENCH_SCALE    vertex-count factor for the graph (default 1.0,
//                      ~110k vertices)
//   MGP_BENCH_SEED     RNG seed (default 1995)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "coarsen/contract.hpp"
#include "coarsen/parallel_matching.hpp"
#include "core/kway.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

using namespace mgp;

double time_coarsen_kernels(const Graph& g, ThreadPool& pool) {
  Timer t;
  Matching m = compute_matching_parallel_hem(g, pool);
  Contraction c = contract(g, m, {}, &pool);
  // Touch the result so the work cannot be elided.
  volatile ewt_t sink = c.coarse.total_edge_weight();
  (void)sink;
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession session(argc, argv, "bench_parallel");
  bench::print_banner(
      "parallel pipeline speedup (extension; no paper analogue)",
      "end-to-end speedup approaching the machine's core count; identical "
      "edge-cut in every row");

  const double scale = bench::scale_from_env(1.0);
  const std::uint64_t seed = bench::seed_from_env();
  const int hw = ThreadPool::hardware_threads();
  int max_threads = 8;
  if (const char* e = std::getenv("MGP_BENCH_THREADS")) max_threads = std::atoi(e);
  max_threads = std::max(1, std::min(max_threads, 2 * hw));

  // ~110k vertices at scale 1.0: comfortably past the acceptance bar's
  // 100k-vertex floor, 27-point connectivity so contraction has real work.
  const vid_t side = std::max<vid_t>(8, static_cast<vid_t>(48.0 * scale + 0.5));
  Graph g = grid3d_27(side, side, side);
  std::printf("graph: grid3d_27(%d)  |V|=%d  |E|=%lld  hardware threads: %d\n\n",
              side, g.num_vertices(), static_cast<long long>(g.num_edges()), hw);

  const part_t k = 8;
  MultilevelConfig cfg;  // paper default: HEM + GGGP + BKLGR
  session.attach(cfg);
  session.describe_run(describe(cfg), k, max_threads, seed);

  // Sequential baseline: the pre-pool code path (threads = 1, no pool).
  double seq_kway;
  ewt_t seq_cut;
  {
    Rng rng(seed);
    Timer t;
    KwayResult r = kway_partition(g, k, cfg, rng);
    seq_kway = t.seconds();
    seq_cut = r.edge_cut;
  }
  std::printf("sequential baseline:        kway %s   cut %lld\n\n",
              bench::fmt_time(seq_kway, 9).c_str(),
              static_cast<long long>(seq_cut));

  std::printf("%s %s %s %s %s %s %s\n", bench::pad("threads", 8).c_str(),
              bench::pad("coarsen", 9).c_str(), bench::pad("speedup", 8).c_str(),
              bench::pad("kway", 9).c_str(), bench::pad("speedup", 8).c_str(),
              bench::pad("vs-seq", 8).c_str(), bench::pad("cut", 10).c_str());

  double coarsen1 = 0, kway1 = 0;
  ewt_t cut1 = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    ThreadPool pool(threads);
    // Warm-up + min-of-2 for the kernel timing; the end-to-end partition
    // dominates the runtime so one run suffices there.
    double coarsen = time_coarsen_kernels(g, pool);
    coarsen = std::min(coarsen, time_coarsen_kernels(g, pool));

    Rng rng(seed);
    Timer t;
    KwayResult r = kway_partition(g, k, cfg, rng, nullptr, &pool);
    const double kway_s = t.seconds();

    if (threads == 1) {
      coarsen1 = coarsen;
      kway1 = kway_s;
      cut1 = r.edge_cut;
    } else if (r.edge_cut != cut1) {
      std::printf("DETERMINISM VIOLATION: cut %lld at %d threads != %lld\n",
                  static_cast<long long>(r.edge_cut), threads,
                  static_cast<long long>(cut1));
      return 1;
    }

    std::printf("%s %s %s %s %s %s %s\n", bench::fmt_int(threads, 8).c_str(),
                bench::fmt_time(coarsen, 9).c_str(),
                bench::fmt_ratio(coarsen1 / coarsen, 8).c_str(),
                bench::fmt_time(kway_s, 9).c_str(),
                bench::fmt_ratio(kway1 / kway_s, 8).c_str(),
                bench::fmt_ratio(seq_kway / kway_s, 8).c_str(),
                bench::fmt_int(r.edge_cut, 10).c_str());
  }

  std::printf(
      "\n(speedup = 1-thread parallel pipeline / this row; vs-seq = "
      "sequential baseline / this row.  Rows share one partition: the cut "
      "column is constant by the determinism guarantee.)\n");
  return 0;
}
