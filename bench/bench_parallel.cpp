// Speedup curves for the parallel multilevel pipeline (extension).
//
// §1: "the coarsening phase of these methods is easy to parallelize" — this
// harness measures how much that (plus parallel contraction and the
// fork/join recursive-bisection tree) buys end to end.  For each thread
// count it times (a) standalone coarsening kernels (matching + contraction)
// and (b) the full k-way partition, and prints speedup over the 1-thread
// run of the *same* parallel pipeline plus the sequential baseline.
//
// Partitions are byte-identical across the thread counts by construction
// (the determinism suite asserts it); the edge-cut column makes that
// visible — it must not move.
//
//   MGP_BENCH_THREADS  comma-free max thread count to sweep (default: 8,
//                      capped to max(8, twice the hardware concurrency) so
//                      baseline rows are comparable across small machines)
//   MGP_BENCH_SCALE    vertex-count factor for the graph (default 1.0,
//                      ~110k vertices)
//   MGP_BENCH_SEED     RNG seed (default 1995)
//
// Each row also reports the heap-allocation count of its timed k-way run
// (the binary links the counting allocator from tests/support/alloc_guard).
// The workspace-arena subsystem keeps the serial rows orders of magnitude
// below |V|; multi-thread rows additionally pay the thread pool's per-task
// future/function plumbing.  The whole table is emitted as machine-readable
// JSON (default BENCH_arena.json, override with MGP_BENCH_ARENA_OUT; see
// README for how to read it).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "coarsen/contract.hpp"
#include "coarsen/parallel_matching.hpp"
#include "core/kway.hpp"
#include "support/alloc_guard.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

using namespace mgp;

struct SweepRow {
  int threads;
  double coarsen_s;
  double kway_s;
  ewt_t cut;
  std::uint64_t allocs;
  std::uint64_t alloc_bytes;
};

/// Writes the sweep as a machine-readable artifact next to the run.
void write_arena_json(const std::string& path, const Graph& g, vid_t side,
                      part_t k, std::uint64_t seed, double seq_kway,
                      ewt_t seq_cut, std::uint64_t seq_allocs,
                      const std::vector<SweepRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_parallel\",\n"
               "  \"graph\": \"grid3d_27(%d)\",\n"
               "  \"num_vertices\": %d,\n"
               "  \"num_edges\": %lld,\n"
               "  \"k\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"counting_allocator\": %s,\n"
               "  \"sequential\": {\"kway_seconds\": %.6f, \"cut\": %lld, "
               "\"allocations\": %llu},\n"
               "  \"rows\": [\n",
               side, g.num_vertices(), static_cast<long long>(g.num_edges()),
               static_cast<int>(k), static_cast<unsigned long long>(seed),
               mgp::testing::counting_allocator_active() ? "true" : "false",
               seq_kway, static_cast<long long>(seq_cut),
               static_cast<unsigned long long>(seq_allocs));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"coarsen_seconds\": %.6f, "
                 "\"kway_seconds\": %.6f, \"speedup_vs_1t\": %.3f, "
                 "\"speedup_vs_seq\": %.3f, \"cut\": %lld, "
                 "\"cut_vs_seq\": %.4f, "
                 "\"allocations\": %llu, \"alloc_bytes\": %llu}%s\n",
                 r.threads, r.coarsen_s, r.kway_s,
                 rows[0].kway_s / r.kway_s, seq_kway / r.kway_s,
                 static_cast<long long>(r.cut),
                 seq_cut > 0 ? static_cast<double>(r.cut) /
                                   static_cast<double>(seq_cut)
                             : 1.0,
                 static_cast<unsigned long long>(r.allocs),
                 static_cast<unsigned long long>(r.alloc_bytes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

double time_coarsen_kernels(const Graph& g, ThreadPool& pool) {
  Timer t;
  Matching m = compute_matching_parallel_hem(g, pool);
  Contraction c = contract(g, m, {}, &pool);
  // Touch the result so the work cannot be elided.
  volatile ewt_t sink = c.coarse.total_edge_weight();
  (void)sink;
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession session(argc, argv, "bench_parallel");
  bench::print_banner(
      "parallel pipeline speedup (extension; no paper analogue)",
      "end-to-end speedup approaching the machine's core count; identical "
      "edge-cut in every row");

  const double scale = bench::scale_from_env(1.0);
  const std::uint64_t seed = bench::seed_from_env();
  const int hw = ThreadPool::hardware_threads();
  int max_threads = 8;
  if (const char* e = std::getenv("MGP_BENCH_THREADS")) max_threads = std::atoi(e);
  max_threads = std::max(1, std::min(max_threads, std::max(8, 2 * hw)));

  // ~110k vertices at scale 1.0: comfortably past the acceptance bar's
  // 100k-vertex floor, 27-point connectivity so contraction has real work.
  const vid_t side = std::max<vid_t>(8, static_cast<vid_t>(48.0 * scale + 0.5));
  Graph g = grid3d_27(side, side, side);
  std::printf("graph: grid3d_27(%d)  |V|=%d  |E|=%lld  hardware threads: %d\n\n",
              side, g.num_vertices(), static_cast<long long>(g.num_edges()), hw);

  const part_t k = 8;
  MultilevelConfig cfg;  // paper default: HEM + GGGP + BKLGR
  // Engage the parallel boundary refiner well below its production
  // threshold: at bench scales the finest boundaries sit in the hundreds,
  // and this harness exists to measure the parallel machinery.
  cfg.kl.parallel_boundary_min = 256;
  session.attach(cfg);
  session.describe_run(describe(cfg), k, max_threads, seed);

  // Sequential baseline: the pre-pool code path (threads = 1, no pool).
  double seq_kway;
  ewt_t seq_cut;
  std::uint64_t seq_allocs;
  {
    Rng rng(seed);
    mgp::testing::AllocGuard alloc_guard;
    Timer t;
    KwayResult r = kway_partition(g, k, cfg, rng);
    seq_kway = t.seconds();
    seq_cut = r.edge_cut;
    seq_allocs = alloc_guard.allocations();
  }
  std::printf("sequential baseline:        kway %s   cut %lld   allocs %llu\n\n",
              bench::fmt_time(seq_kway, 9).c_str(),
              static_cast<long long>(seq_cut),
              static_cast<unsigned long long>(seq_allocs));

  std::printf("%s %s %s %s %s %s %s %s\n", bench::pad("threads", 8).c_str(),
              bench::pad("coarsen", 9).c_str(), bench::pad("speedup", 8).c_str(),
              bench::pad("kway", 9).c_str(), bench::pad("speedup", 8).c_str(),
              bench::pad("vs-seq", 8).c_str(), bench::pad("cut", 10).c_str(),
              bench::pad("allocs", 9).c_str());

  std::vector<SweepRow> rows;
  double coarsen1 = 0, kway1 = 0;
  ewt_t cut1 = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    ThreadPool pool(threads);
    // Warm-up + min-of-2 for the kernel timing; the end-to-end partition
    // dominates the runtime so one run suffices there.
    double coarsen = time_coarsen_kernels(g, pool);
    coarsen = std::min(coarsen, time_coarsen_kernels(g, pool));

    Rng rng(seed);
    mgp::testing::AllocGuard alloc_guard;
    Timer t;
    KwayResult r = kway_partition(g, k, cfg, rng, nullptr, &pool);
    const double kway_s = t.seconds();
    const std::uint64_t allocs = alloc_guard.allocations();
    const std::uint64_t alloc_bytes = alloc_guard.bytes();

    if (threads == 1) {
      coarsen1 = coarsen;
      kway1 = kway_s;
      cut1 = r.edge_cut;
    } else if (r.edge_cut != cut1) {
      std::printf("DETERMINISM VIOLATION: cut %lld at %d threads != %lld\n",
                  static_cast<long long>(r.edge_cut), threads,
                  static_cast<long long>(cut1));
      return 1;
    }

    rows.push_back({threads, coarsen, kway_s, r.edge_cut, allocs, alloc_bytes});
    std::printf("%s %s %s %s %s %s %s %s\n", bench::fmt_int(threads, 8).c_str(),
                bench::fmt_time(coarsen, 9).c_str(),
                bench::fmt_ratio(coarsen1 / coarsen, 8).c_str(),
                bench::fmt_time(kway_s, 9).c_str(),
                bench::fmt_ratio(kway1 / kway_s, 8).c_str(),
                bench::fmt_ratio(seq_kway / kway_s, 8).c_str(),
                bench::fmt_int(r.edge_cut, 10).c_str(),
                bench::fmt_int(static_cast<long long>(allocs), 9).c_str());
  }

  std::printf(
      "\n(speedup = 1-thread parallel pipeline / this row; vs-seq = "
      "sequential baseline / this row.  Rows share one partition: the cut "
      "column is constant by the determinism guarantee.  allocs counts every "
      "heap allocation inside the timed k-way run; serial rows stay orders of "
      "magnitude below |V| thanks to the workspace pool, multi-thread rows "
      "add the thread pool's per-task plumbing.)\n");

  std::string out = "BENCH_arena.json";
  if (const char* e = std::getenv("MGP_BENCH_ARENA_OUT")) out = e;
  write_arena_json(out, g, side, k, seed, seq_kway, seq_cut, seq_allocs, rows);
  return 0;
}
