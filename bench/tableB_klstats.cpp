// Instruments the §4.1 claims about the KL engine itself:
//   * "a single iteration of KL terminates after only a small percentage of
//     the vertices have been swapped (less than 5%)"
//   * boundary policies avoid most queue insertions.
// One multilevel bisection per graph; stats summed over all levels.
#include <cstdio>

#include "common.hpp"
#include "core/multilevel.hpp"

using namespace mgp;
using namespace mgp::bench;

int main(int argc, char** argv) {
  ObsSession session(argc, argv, "tableB_klstats");
  print_banner("Table B (§4.1): KL engine statistics per bisection",
               "swapped vertices a small fraction of |V|; boundary policies "
               "insert far fewer vertices than full-queue policies");

  session.describe_run("HEM+GGGP+{KLR,BKLR}", 2, 1, seed_from_env());
  auto suite = load_suite(SuiteKind::kTables, 0.3);

  std::printf("\n%s %9s | %8s %8s %9s | %9s %9s | %7s\n", pad("graph", 6).c_str(),
              "|V|", "passes", "swapped", "swap/|V|", "ins KLR", "ins BKLR",
              "ins ratio");
  for (const auto& ng : suite) {
    MultilevelConfig klr;
    klr.refine = RefinePolicy::kKLR;
    session.attach(klr);
    Rng r1(seed_from_env());
    BisectResult a =
        multilevel_bisect(ng.graph, ng.graph.total_vertex_weight() / 2, klr, r1);

    MultilevelConfig bklr;
    bklr.refine = RefinePolicy::kBKLR;
    session.attach(bklr);
    Rng r2(seed_from_env());
    BisectResult b =
        multilevel_bisect(ng.graph, ng.graph.total_vertex_weight() / 2, bklr, r2);

    const double swap_frac = static_cast<double>(a.refine_stats.swapped) /
                             static_cast<double>(ng.graph.num_vertices());
    const double ins_ratio =
        a.refine_stats.insertions > 0
            ? static_cast<double>(b.refine_stats.insertions) /
                  static_cast<double>(a.refine_stats.insertions)
            : 0.0;
    std::printf("%s %9lld | %8d %8lld %8.1f%% | %9lld %9lld | %7.3f\n",
                pad(ng.name, 6).c_str(),
                static_cast<long long>(ng.graph.num_vertices()), a.refine_stats.passes,
                static_cast<long long>(a.refine_stats.swapped), 100.0 * swap_frac,
                static_cast<long long>(a.refine_stats.insertions),
                static_cast<long long>(b.refine_stats.insertions), ins_ratio);
    std::fflush(stdout);
  }
  return 0;
}
