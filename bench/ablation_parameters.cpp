// Ablation of the paper's tuned constants:
//   * §3.3: "The choice of x = 50 works quite well for all our graphs" —
//     the KL pass's non-improving-move window;
//   * §3.3: BKLGR's 2%-of-|V0| boundary threshold for switching between
//     multi-pass BKLR and single-pass BGR;
//   * §3: coarsening stops at "a few hundred vertices" — the coarsen_to
//     target.
// Each sweep varies one constant around the paper's value with everything
// else at defaults, reporting 32-way edge-cut and refinement/total time on
// representative suite graphs.
//
// Expected shape: cut improves sharply up to x ≈ 50 then flattens while
// time keeps growing; the 2% threshold sits between all-BGR (fast, slightly
// worse) and all-BKLR (slower, marginally better); coarsen_to ~100 balances
// coarsening depth against initial-partition quality.
#include <cstdio>

#include "common.hpp"
#include "core/kway.hpp"
#include "support/timer.hpp"

using namespace mgp;
using namespace mgp::bench;

namespace {

struct Row {
  ewt_t cut;
  double rtime;
  double total;
};

Row run(const Graph& g, const MultilevelConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  PhaseTimers timers;
  Timer t;
  KwayResult r = kway_partition(g, 32, cfg, rng, &timers);
  return Row{r.edge_cut, timers.get(PhaseTimers::kRefine), t.seconds()};
}

}  // namespace

int main() {
  print_banner("Ablation: the paper's tuned constants (x=50, 2% rule, coarsen_to)",
               "cut flattens near x=50 while RTime keeps rising; 2% rule "
               "between all-BGR and all-BKLR; coarsen_to ~100 a good middle");

  auto suite = load_suite(SuiteKind::kTables, 0.2);
  // Three representative graphs: 2D mesh, mid 3D, large 3D.
  std::vector<const NamedGraph*> picks;
  for (const auto& ng : suite) {
    if (ng.name == "4ELT" || ng.name == "BRCK" || ng.name == "TROL") {
      picks.push_back(&ng);
    }
  }

  std::printf("\n-- KL window x (KLR policy; paper: x = 50) --\n");
  std::printf("%s", pad("graph", 6).c_str());
  for (int x : {1, 10, 50, 200}) std::printf(" | x=%-4d %8s %8s", x, "32EC", "RTime");
  std::printf("\n");
  for (const NamedGraph* ng : picks) {
    std::printf("%s", pad(ng->name, 6).c_str());
    for (int x : {1, 10, 50, 200}) {
      MultilevelConfig cfg;
      cfg.refine = RefinePolicy::kKLR;
      cfg.kl.non_improving_window = x;
      Row row = run(ng->graph, cfg, seed_from_env());
      std::printf(" |        %8lld %8.3f", static_cast<long long>(row.cut), row.rtime);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\n-- BKLGR boundary threshold (paper: 2%% of |V0|) --\n");
  std::printf("%s", pad("graph", 6).c_str());
  for (double f : {0.0, 0.005, 0.02, 0.08, 1.0}) {
    std::printf(" | f=%-5.3f %7s %7s", f, "32EC", "RTime");
  }
  std::printf("\n        (f=0: always BGR; f=1: always BKLR)\n");
  for (const NamedGraph* ng : picks) {
    std::printf("%s", pad(ng->name, 6).c_str());
    for (double f : {0.0, 0.005, 0.02, 0.08, 1.0}) {
      MultilevelConfig cfg;
      cfg.kl.bklgr_boundary_fraction = f;
      Row row = run(ng->graph, cfg, seed_from_env());
      std::printf(" |         %7lld %7.3f", static_cast<long long>(row.cut), row.rtime);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\n-- coarsen_to (paper: 'a few hundred vertices') --\n");
  std::printf("%s", pad("graph", 6).c_str());
  for (vid_t c : {25, 100, 400, 1600}) {
    std::printf(" | c=%-5d %7s %7s", c, "32EC", "total");
  }
  std::printf("\n");
  for (const NamedGraph* ng : picks) {
    std::printf("%s", pad(ng->name, 6).c_str());
    for (vid_t c : {25, 100, 400, 1600}) {
      MultilevelConfig cfg;
      cfg.coarsen_to = c;
      Row row = run(ng->graph, cfg, seed_from_env());
      std::printf(" |        %7lld %7.3f", static_cast<long long>(row.cut), row.total);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
