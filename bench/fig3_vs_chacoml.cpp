// Reproduces Figure 3: quality of our multilevel algorithm vs the Chaco
// multilevel algorithm (Chaco-ML: RM coarsening, spectral bisection of the
// coarsest graph, KL every other level).
//
// Expected shape (paper): ours usually better (10-50% on some problems);
// where Chaco-ML wins, only marginally (< 2%).
#include "core/chaco_ml.hpp"
#include "fig_common.hpp"

using namespace mgp;
using namespace mgp::bench;

int main(int argc, char** argv) {
  ObsSession session(argc, argv, "fig3_vs_chacoml");
  return run_cut_ratio_figure(
      "Figure 3: our multilevel vs Chaco-ML",
      "mean ratio < 1.0; losses marginal",
      "Chaco-ML",
      [](const Graph& g, part_t k, Rng& rng) {
        return chaco_ml_partition(g, k, rng);
      },
      0.05, &session);
}
