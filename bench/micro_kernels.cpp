// Google-benchmark micro kernels for the data structures whose O(1)/O(|E|)
// claims the paper's complexity analysis rests on:
//   * FM bucket queue vs a binary-heap baseline (the §3.3 "constant time"
//     gain structure),
//   * the four matching schemes (all O(|E|)),
//   * graph contraction,
//   * Laplacian SpMV (the inner loop of the spectral baselines).
#include <benchmark/benchmark.h>

#include <queue>

#include "coarsen/contract.hpp"
#include "coarsen/matching.hpp"
#include "coarsen/parallel_matching.hpp"
#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"
#include "support/bucket_queue.hpp"
#include "support/rng.hpp"

namespace {

using namespace mgp;

void BM_BucketQueueInsertPop(benchmark::State& state) {
  const vid_t n = static_cast<vid_t>(state.range(0));
  Rng rng(1);
  std::vector<BucketQueue::gain_t> gains(static_cast<std::size_t>(n));
  for (auto& g : gains) g = static_cast<BucketQueue::gain_t>(rng.next_below(201)) - 100;
  BucketQueue q;
  for (auto _ : state) {
    q.reset(n, 100);
    for (vid_t v = 0; v < n; ++v) q.insert(v, gains[static_cast<std::size_t>(v)]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop_max());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BucketQueueInsertPop)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_BinaryHeapInsertPop(benchmark::State& state) {
  // Baseline the bucket queue is replacing: O(log n) per op.
  const vid_t n = static_cast<vid_t>(state.range(0));
  Rng rng(1);
  std::vector<std::pair<BucketQueue::gain_t, vid_t>> items(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    items[static_cast<std::size_t>(v)] = {
        static_cast<BucketQueue::gain_t>(rng.next_below(201)) - 100, v};
  }
  for (auto _ : state) {
    std::priority_queue<std::pair<BucketQueue::gain_t, vid_t>> q;
    for (auto& it : items) q.push(it);
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.top());
      q.pop();
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BinaryHeapInsertPop)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_BucketQueueUpdate(benchmark::State& state) {
  const vid_t n = 1 << 14;
  BucketQueue q;
  q.reset(n, 100);
  Rng rng(2);
  for (vid_t v = 0; v < n; ++v) {
    q.insert(v, static_cast<BucketQueue::gain_t>(rng.next_below(201)) - 100);
  }
  for (auto _ : state) {
    vid_t v = rng.next_vid(n);
    q.update(v, static_cast<BucketQueue::gain_t>(rng.next_below(201)) - 100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketQueueUpdate);

const Graph& bench_graph() {
  static const Graph g = fem3d_tet(22, 22, 22, 7);
  return g;
}

void BM_Matching(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto scheme = static_cast<MatchingScheme>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    Matching m = compute_matching(g, scheme, {}, rng);
    benchmark::DoNotOptimize(m.pairs);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
  state.SetLabel(to_string(scheme));
}
BENCHMARK(BM_Matching)
    ->Arg(static_cast<int>(MatchingScheme::kRandom))
    ->Arg(static_cast<int>(MatchingScheme::kHeavyEdge))
    ->Arg(static_cast<int>(MatchingScheme::kLightEdge))
    ->Arg(static_cast<int>(MatchingScheme::kHeavyClique));

void BM_ParallelMatching(benchmark::State& state) {
  // Round-synchronous proposal HEM; results identical across thread counts.
  const Graph& g = bench_graph();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Matching m = compute_matching_parallel_hem(g, threads);
    benchmark::DoNotOptimize(m.pairs);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_ParallelMatching)->Arg(1)->Arg(2)->Arg(4);

void BM_Contract(benchmark::State& state) {
  const Graph& g = bench_graph();
  Rng rng(4);
  Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
  for (auto _ : state) {
    Contraction c = contract(g, m, {});
    benchmark::DoNotOptimize(c.coarse.num_vertices());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_Contract);

void BM_LaplacianApply(benchmark::State& state) {
  const Graph& g = bench_graph();
  std::vector<double> x(static_cast<std::size_t>(g.num_vertices()), 1.0);
  std::vector<double> y(x.size());
  Rng rng(5);
  for (auto& v : x) v = rng.next_double();
  for (auto _ : state) {
    laplacian_apply(g, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_LaplacianApply);

}  // namespace
