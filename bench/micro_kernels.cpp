// Google-benchmark micro kernels for the data structures whose O(1)/O(|E|)
// claims the paper's complexity analysis rests on:
//   * FM bucket queue vs a binary-heap baseline (the §3.3 "constant time"
//     gain structure),
//   * the four matching schemes (all O(|E|)),
//   * graph contraction,
//   * Laplacian SpMV (the inner loop of the spectral baselines).
//
// The *Workspace variants benchmark the arena/workspace forms of the same
// kernels and report a `steady_allocs` counter: heap allocations in one
// post-warm-up run, counted by the linked counting allocator
// (tests/support/alloc_guard).  The workspace forms must report 0.
#include <benchmark/benchmark.h>

#include <queue>

#include "coarsen/contract.hpp"
#include "coarsen/matching.hpp"
#include "coarsen/parallel_matching.hpp"
#include "graph/generators.hpp"
#include "initpart/bisection_state.hpp"
#include "initpart/graph_grow.hpp"
#include "obs/trace.hpp"
#include "refine/parallel_refine.hpp"
#include "spectral/laplacian.hpp"
#include "support/alloc_guard.hpp"
#include "support/arena.hpp"
#include "support/bucket_queue.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

using namespace mgp;

void BM_BucketQueueInsertPop(benchmark::State& state) {
  const vid_t n = static_cast<vid_t>(state.range(0));
  Rng rng(1);
  std::vector<BucketQueue::gain_t> gains(static_cast<std::size_t>(n));
  for (auto& g : gains) g = static_cast<BucketQueue::gain_t>(rng.next_below(201)) - 100;
  BucketQueue q;
  for (auto _ : state) {
    q.reset(n, 100);
    for (vid_t v = 0; v < n; ++v) q.insert(v, gains[static_cast<std::size_t>(v)]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop_max());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BucketQueueInsertPop)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_BinaryHeapInsertPop(benchmark::State& state) {
  // Baseline the bucket queue is replacing: O(log n) per op.
  const vid_t n = static_cast<vid_t>(state.range(0));
  Rng rng(1);
  std::vector<std::pair<BucketQueue::gain_t, vid_t>> items(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    items[static_cast<std::size_t>(v)] = {
        static_cast<BucketQueue::gain_t>(rng.next_below(201)) - 100, v};
  }
  for (auto _ : state) {
    std::priority_queue<std::pair<BucketQueue::gain_t, vid_t>> q;
    for (auto& it : items) q.push(it);
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.top());
      q.pop();
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BinaryHeapInsertPop)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_BucketQueueUpdate(benchmark::State& state) {
  const vid_t n = 1 << 14;
  BucketQueue q;
  q.reset(n, 100);
  Rng rng(2);
  for (vid_t v = 0; v < n; ++v) {
    q.insert(v, static_cast<BucketQueue::gain_t>(rng.next_below(201)) - 100);
  }
  for (auto _ : state) {
    vid_t v = rng.next_vid(n);
    q.update(v, static_cast<BucketQueue::gain_t>(rng.next_below(201)) - 100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketQueueUpdate);

const Graph& bench_graph() {
  static const Graph g = fem3d_tet(22, 22, 22, 7);
  return g;
}

void BM_Matching(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto scheme = static_cast<MatchingScheme>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    Matching m = compute_matching(g, scheme, {}, rng);
    benchmark::DoNotOptimize(m.pairs);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
  state.SetLabel(to_string(scheme));
}
BENCHMARK(BM_Matching)
    ->Arg(static_cast<int>(MatchingScheme::kRandom))
    ->Arg(static_cast<int>(MatchingScheme::kHeavyEdge))
    ->Arg(static_cast<int>(MatchingScheme::kLightEdge))
    ->Arg(static_cast<int>(MatchingScheme::kHeavyClique));

void BM_ParallelMatching(benchmark::State& state) {
  // Round-synchronous proposal HEM; results identical across thread counts.
  const Graph& g = bench_graph();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Matching m = compute_matching_parallel_hem(g, threads);
    benchmark::DoNotOptimize(m.pairs);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_ParallelMatching)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelRefine(benchmark::State& state) {
  // Round-synchronous propose/commit boundary refinement; the partition is
  // byte-identical across thread counts, so the Arg sweep prices pure
  // parallel speedup on a fixed workload.
  const Graph& g = bench_graph();
  const vid_t n = g.num_vertices();
  const vwt_t target0 = g.total_vertex_weight() / 2;
  ThreadPool pool(static_cast<int>(state.range(0)));
  KlWorkspace ws;
  Bisection b;
  b.side.assign(static_cast<std::size_t>(n), 0);
  Rng seed_rng(11);
  std::vector<part_t> start(static_cast<std::size_t>(n));
  for (auto& s : start) s = static_cast<part_t>(seed_rng.next_below(2));
  ewt_t cut = 0;
  for (auto _ : state) {
    b.side = start;
    refresh_bisection(g, b);
    parallel_bgr_refine(g, b, target0, {}, pool, nullptr, &ws);
    cut = b.cut;
    benchmark::DoNotOptimize(b.cut);
  }
  state.counters["final_cut"] = static_cast<double>(cut);
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_ParallelRefine)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelRefineWorkspace(benchmark::State& state) {
  // Steady-state allocation audit of the parallel refiner.  A one-worker
  // pool runs the propose sweeps inline (no task futures), so any counted
  // allocation is a workspace-reuse bug in the refiner itself.
  const Graph& g = bench_graph();
  const vid_t n = g.num_vertices();
  const vwt_t target0 = g.total_vertex_weight() / 2;
  ThreadPool pool(1);
  KlWorkspace ws;
  Bisection b;
  b.side.assign(static_cast<std::size_t>(n), 0);
  Rng seed_rng(11);
  std::vector<part_t> start(static_cast<std::size_t>(n));
  for (auto& s : start) s = static_cast<part_t>(seed_rng.next_below(2));
  auto run = [&]() {
    b.side = start;
    refresh_bisection(g, b);
    parallel_bgr_refine(g, b, target0, {}, pool, nullptr, &ws);
  };
  run();  // warm the buffers
  run();
  mgp::testing::AllocGuard guard;
  run();
  state.counters["steady_allocs"] = static_cast<double>(guard.allocations());
  for (auto _ : state) {
    run();
    benchmark::DoNotOptimize(b.cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_ParallelRefineWorkspace);

void BM_Contract(benchmark::State& state) {
  const Graph& g = bench_graph();
  Rng rng(4);
  Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
  for (auto _ : state) {
    Contraction c = contract(g, m, {});
    benchmark::DoNotOptimize(c.coarse.num_vertices());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_Contract);

void BM_MatchingWorkspace(benchmark::State& state) {
  // compute_matching with caller-owned result + order scratch: same RNG
  // stream and output as BM_Matching/kHeavyEdge, zero steady-state allocs.
  const Graph& g = bench_graph();
  Rng rng(3);
  Matching m;
  std::vector<vid_t> order;
  auto run = [&]() {
    compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng, m, order);
  };
  run();  // warm the buffers
  mgp::testing::AllocGuard guard;
  run();
  state.counters["steady_allocs"] = static_cast<double>(guard.allocations());
  for (auto _ : state) {
    run();
    benchmark::DoNotOptimize(m.pairs);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_MatchingWorkspace);

void BM_ContractWorkspace(benchmark::State& state) {
  // contract_into with pooled scratch + arena: the coarse CSR, contraction
  // map, and hash-lookup tables are all recycled across runs.
  const Graph& g = bench_graph();
  Rng rng(4);
  Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
  ContractScratch scratch;
  ScratchArena arena;
  Contraction c;
  auto run = [&]() { contract_into(g, m, {}, nullptr, scratch, arena, c); };
  run();  // warm the buffers
  run();  // let the arena coalesce after its first reset
  mgp::testing::AllocGuard guard;
  run();
  state.counters["steady_allocs"] = static_cast<double>(guard.allocations());
  for (auto _ : state) {
    run();
    benchmark::DoNotOptimize(c.coarse.num_vertices());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_ContractWorkspace);

const Graph& coarse_bench_graph() {
  // Coarsest-graph scale, where the initial partitioner actually runs.
  static const Graph g = fem2d_tri(16, 16, 7);
  return g;
}

void BM_Gggp(benchmark::State& state) {
  const Graph& g = coarse_bench_graph();
  const vwt_t target0 = g.total_vertex_weight() / 2;
  Rng rng(9);
  for (auto _ : state) {
    Bisection b = gggp_bisect(g, target0, 5, rng);
    benchmark::DoNotOptimize(b.cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_Gggp);

void BM_GggpWorkspace(benchmark::State& state) {
  const Graph& g = coarse_bench_graph();
  const vwt_t target0 = g.total_vertex_weight() / 2;
  Rng rng(9);
  GrowScratch ws;
  Bisection best;
  auto run = [&]() { gggp_bisect_into(g, target0, 5, rng, ws, best); };
  run();  // warm the buffers
  mgp::testing::AllocGuard guard;
  run();
  state.counters["steady_allocs"] = static_cast<double>(guard.allocations());
  for (auto _ : state) {
    run();
    benchmark::DoNotOptimize(best.cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_GggpWorkspace);

void BM_ObsOverheadGuard(benchmark::State& state) {
  // Guard for the observability kill switches (DESIGN.md "Observability"):
  // the instrumentation tax on the HEM+contract kernel must stay <= 1%.
  // With MGP_OBS=OFF spans compile to nothing, so the tax is zero by
  // construction (this binary is also built in that configuration by the
  // sanitizers workflow); here we price the compiled-in-but-runtime-
  // disabled path — one relaxed atomic load and a branch per span — and
  // fail the run if (spans per kernel run) x (cost per disabled span)
  // exceeds 1% of the kernel's own time.
  const Graph& g = bench_graph();

  // How many spans one kernel run emits, counted from an actual trace.
  std::size_t spans_per_run = 0;
  if (obs::kObsCompiled) {
    obs::trace_start();
    Rng rng(6);
    Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
    Contraction c = contract(g, m, {});
    benchmark::DoNotOptimize(c.coarse.num_vertices());
    obs::trace_stop();
    spans_per_run = obs::trace_event_count();
    obs::trace_start();  // clear the probe events, then disable again
    obs::trace_stop();
  }

  // Price of one runtime-disabled span (tracing is off here).
  constexpr int kSpanLoop = 1 << 20;
  Timer span_timer;
  for (int i = 0; i < kSpanLoop; ++i) {
    obs::Span s("overhead_probe");
    s.arg("i", i);
  }
  const double per_span_s = span_timer.seconds() / kSpanLoop;

  // The kernel itself, un-traced (min of 3 to shed scheduling noise).
  double kernel_s = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Rng rng(6);
    Timer t;
    Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
    Contraction c = contract(g, m, {});
    benchmark::DoNotOptimize(c.coarse.num_vertices());
    const double s = t.seconds();
    kernel_s = rep == 0 ? s : std::min(kernel_s, s);
  }

  const double overhead_fraction =
      kernel_s > 0 ? (static_cast<double>(spans_per_run) * per_span_s) / kernel_s
                   : 0.0;
  state.counters["spans_per_run"] = static_cast<double>(spans_per_run);
  state.counters["ns_per_disabled_span"] = per_span_s * 1e9;
  state.counters["overhead_pct"] = 100.0 * overhead_fraction;
  if (overhead_fraction > 0.01) {
    state.SkipWithError("observability overhead guard tripped: disabled spans "
                        "cost > 1% of the HEM+contract kernel");
    return;
  }

  for (auto _ : state) {
    Rng rng(6);
    Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
    Contraction c = contract(g, m, {});
    benchmark::DoNotOptimize(c.coarse.num_vertices());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_ObsOverheadGuard);

void BM_LaplacianApply(benchmark::State& state) {
  const Graph& g = bench_graph();
  std::vector<double> x(static_cast<std::size_t>(g.num_vertices()), 1.0);
  std::vector<double> y(x.size());
  Rng rng(5);
  for (auto& v : x) v = rng.next_double();
  for (auto _ : state) {
    laplacian_apply(g, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_LaplacianApply);

}  // namespace
