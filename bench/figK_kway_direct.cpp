// Extension bench: direct multilevel k-way partitioning (the paper's
// future-work direction, later published as k-way METIS) vs the paper's
// recursive bisection, for k = 64 / 128 / 256.
//
// Expected shape: one coarsening pass instead of k-1 makes the direct
// algorithm's run time grow much more slowly with k (several-fold faster at
// k = 256), with edge-cuts in the same quality class as recursive
// bisection.
#include <cstdio>

#include "common.hpp"
#include "core/kway_direct.hpp"
#include "support/timer.hpp"

using namespace mgp;
using namespace mgp::bench;

int main() {
  print_banner("Figure K (extension): direct k-way vs recursive bisection",
               "direct k-way several times faster at k = 256, cut within the "
               "same quality class");

  auto suite = load_suite(SuiteKind::kFigures, 0.05);
  const part_t ks[] = {64, 128, 256};

  std::printf("\n%s %8s", pad("graph", 6).c_str(), "|V|");
  for (part_t k : ks) std::printf(" | %26s k=%-3d", "", k);
  std::printf("\n%s %8s", pad("", 6).c_str(), "");
  for (int i = 0; i < 3; ++i) std::printf(" | %9s %9s %6s %6s", "cutRB", "cutKW", "tRB", "tKW");
  std::printf("\n");

  for (const auto& ng : suite) {
    std::printf("%s %8lld", pad(ng.name, 6).c_str(),
                static_cast<long long>(ng.graph.num_vertices()));
    for (part_t k : ks) {
      Timer t;
      Rng r1(seed_from_env());
      MultilevelConfig rb_cfg;
      KwayResult rb = kway_partition(ng.graph, k, rb_cfg, r1);
      const double t_rb = t.seconds();

      t.reset();
      Rng r2(seed_from_env());
      KwayDirectConfig kw_cfg;
      KwayResult kw = kway_partition_direct(ng.graph, k, kw_cfg, r2);
      const double t_kw = t.seconds();

      std::printf(" | %9lld %9lld %6.2f %6.2f", static_cast<long long>(rb.edge_cut),
                  static_cast<long long>(kw.edge_cut), t_rb, t_kw);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
