// Extension bench: direct multilevel k-way partitioning (the paper's
// future-work direction, later published as k-way METIS) vs the paper's
// recursive bisection, for k = 64 / 128 / 256.
//
// Expected shape: one coarsening pass instead of k-1 makes the direct
// algorithm's run time grow much more slowly with k (several-fold faster at
// k = 256), with edge-cuts in the same quality class as recursive
// bisection.
//
// Besides the suite table, the harness sweeps k over a pinned generator
// graph and emits BENCH_kway_direct.json (override the path with
// MGP_BENCH_KWAY_OUT) in the repo's row format, keyed by k:
//   * cut / cut_rb / cut_vs_rb — direct and recursive-bisection edge-cuts
//     and their ratio (deterministic for a pinned seed/scale, so CI gates
//     them against bench/baselines/BENCH_kway_direct.json at 1%);
//   * steady_allocs — heap allocations of a *warm* kway_partition_direct_into
//     call (the binary links the counting allocator; the zero-allocation
//     guarantee is gated exactly);
//   * rb_seconds / direct_seconds — informational wall times: direct should
//     grow sublinearly in k while recursive bisection pays O(log k) ladders.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/kway_direct.hpp"
#include "support/alloc_guard.hpp"
#include "support/timer.hpp"
#include "support/workspace.hpp"

using namespace mgp;
using namespace mgp::bench;

namespace {

struct KRow {
  part_t k;
  ewt_t cut_direct;
  ewt_t cut_rb;
  double t_direct;
  double t_rb;
  std::uint64_t steady_allocs;
};

void write_kway_json(const std::string& path, const Graph& g, vid_t gen_n,
                     std::uint64_t seed, const std::vector<KRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"figK_kway_direct\",\n"
               "  \"graph\": \"circuit(%d)\",\n"
               "  \"num_vertices\": %d,\n"
               "  \"num_edges\": %lld,\n"
               "  \"seed\": %llu,\n"
               "  \"counting_allocator\": %s,\n"
               "  \"rows\": [\n",
               gen_n, g.num_vertices(), static_cast<long long>(g.num_edges()),
               static_cast<unsigned long long>(seed),
               mgp::testing::counting_allocator_active() ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KRow& r = rows[i];
    std::fprintf(f,
                 "    {\"k\": %d, \"cut\": %lld, \"cut_rb\": %lld, "
                 "\"cut_vs_rb\": %.4f, \"steady_allocs\": %llu, "
                 "\"direct_seconds\": %.6f, \"rb_seconds\": %.6f}%s\n",
                 static_cast<int>(r.k), static_cast<long long>(r.cut_direct),
                 static_cast<long long>(r.cut_rb),
                 r.cut_rb > 0 ? static_cast<double>(r.cut_direct) /
                                    static_cast<double>(r.cut_rb)
                              : 1.0,
                 static_cast<unsigned long long>(r.steady_allocs), r.t_direct,
                 r.t_rb, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  print_banner("Figure K (extension): direct k-way vs recursive bisection",
               "direct k-way several times faster at k = 256, cut within the "
               "same quality class");

  auto suite = load_suite(SuiteKind::kFigures, 0.05);
  const part_t ks[] = {64, 128, 256};

  std::printf("\n%s %8s", pad("graph", 6).c_str(), "|V|");
  for (part_t k : ks) std::printf(" | %26s k=%-3d", "", k);
  std::printf("\n%s %8s", pad("", 6).c_str(), "");
  for (int i = 0; i < 3; ++i) {
    std::printf(" | %9s %9s %6s %6s", "cutRB", "cutKW", "tRB", "tKW");
  }
  std::printf("\n");

  for (const auto& ng : suite) {
    std::printf("%s %8lld", pad(ng.name, 6).c_str(),
                static_cast<long long>(ng.graph.num_vertices()));
    for (part_t k : ks) {
      Timer t;
      Rng r1(seed_from_env());
      MultilevelConfig rb_cfg;
      KwayResult rb = kway_partition(ng.graph, k, rb_cfg, r1);
      const double t_rb = t.seconds();

      t.reset();
      Rng r2(seed_from_env());
      KwayDirectConfig kw_cfg;
      KwayResult kw = kway_partition_direct(ng.graph, k, kw_cfg, r2);
      const double t_kw = t.seconds();

      std::printf(" | %9lld %9lld %6.2f %6.2f", static_cast<long long>(rb.edge_cut),
                  static_cast<long long>(kw.edge_cut), t_rb, t_kw);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  // ---- Pinned k sweep for the CI gate. ----
  // Deliberately NOT scaled by MGP_BENCH_SCALE: the sweep's cuts are the
  // gated artifact, and the committed baseline only holds if every machine
  // partitions the identical graph.  (The suite table above stays scalable.)
  const std::uint64_t seed = seed_from_env();
  const vid_t gen_n = 12000;
  const Graph g = circuit(gen_n, 11);
  std::printf("\nk sweep: circuit(%d)  |V|=%d  |E|=%lld  seed=%llu\n",
              gen_n, g.num_vertices(), static_cast<long long>(g.num_edges()),
              static_cast<unsigned long long>(seed));
  std::printf("%s %9s %9s %9s %9s %9s %8s\n", pad("k", 4).c_str(), "cutRB",
              "cutKW", "ratio", "tRB", "tKW", "allocs");

  std::vector<KRow> rows;
  KwayDirectWorkspace dws;
  BisectWorkspace bws;
  std::vector<part_t> part;
  for (part_t k : {part_t{16}, part_t{64}, part_t{256}}) {
    Timer t;
    Rng r1(seed);
    MultilevelConfig rb_cfg;
    const KwayResult rb = kway_partition(g, k, rb_cfg, r1);
    const double t_rb = t.seconds();

    KwayDirectConfig dcfg;
    // Warm the workspaces: two identical runs reach every buffer's
    // high-water mark for this k, so the third (guarded, timed) run is the
    // server's steady state.
    for (int warm = 0; warm < 2; ++warm) {
      Rng rw(seed);
      kway_partition_direct_into(g, k, dcfg, rw, dws, &bws, part);
    }
    Rng r2(seed);
    mgp::testing::AllocGuard guard;
    t.reset();
    const ewt_t cut = kway_partition_direct_into(g, k, dcfg, r2, dws, &bws, part);
    const double t_kw = t.seconds();
    const std::uint64_t allocs = guard.allocations();

    rows.push_back({k, cut, rb.edge_cut, t_kw, t_rb, allocs});
    std::printf("%s %9lld %9lld %9.4f %9.4f %9.4f %8llu\n",
                pad(std::to_string(k), 4).c_str(),
                static_cast<long long>(rb.edge_cut), static_cast<long long>(cut),
                rb.edge_cut > 0 ? static_cast<double>(cut) /
                                      static_cast<double>(rb.edge_cut)
                                : 1.0,
                t_rb, t_kw, static_cast<unsigned long long>(allocs));
  }

  std::string out = "BENCH_kway_direct.json";
  if (const char* e = std::getenv("MGP_BENCH_KWAY_OUT")) out = e;
  write_kway_json(out, g, gen_n, seed, rows);
  return 0;
}
