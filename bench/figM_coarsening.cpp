// Extension bench: coarsening-strategy sweep (DESIGN.md §12).
//
// The same direct k-way pipeline runs under each coarsening engine —
// matching-based (paper default), algebraic-distance HEM, and n-level
// incremental contraction — over the figure suite, then over a pinned
// generator graph for the CI gate.
//
// Expected shape: AD-HEM lands in the default's quality class at a small
// relaxation overhead; n-level trades a deeper ladder (many cheap levels)
// for finer-grained contraction decisions.  All three are allocation-free
// once their workspaces are warm, and the gate pins that exactly.
//
// The sweep emits BENCH_coarsening.json (override the path with
// MGP_BENCH_COARSEN_OUT) in the repo's row format, keyed by strategy:
//   * cut — gated against bench/baselines/BENCH_coarsening.json at 1%
//     (deterministic for the pinned seed, so it should match exactly);
//   * steady_allocs — heap allocations of a warm kway_partition_direct_into
//     call (zero baseline, gated exactly);
//   * levels — coarsening-ladder depth (informational; n-level's is ~16x);
//   * direct_seconds — informational wall time.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/kway_direct.hpp"
#include "obs/report.hpp"
#include "support/alloc_guard.hpp"
#include "support/timer.hpp"
#include "support/workspace.hpp"

using namespace mgp;
using namespace mgp::bench;

namespace {

struct StrategyCase {
  const char* name;
  CoarsenStrategy strategy;
};

constexpr StrategyCase kStrategies[] = {
    {"match", CoarsenStrategy::kMatching},
    {"ad", CoarsenStrategy::kAlgebraicDistance},
    {"nlevel", CoarsenStrategy::kNLevel},
};

struct SRow {
  const char* name;
  ewt_t cut;
  std::int64_t levels;
  double seconds;
  std::uint64_t steady_allocs;
};

void write_coarsen_json(const std::string& path, const Graph& g, vid_t gen_nx,
                        part_t k, std::uint64_t seed,
                        const std::vector<SRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"figM_coarsening\",\n"
               "  \"graph\": \"fem2d_tri(%d)\",\n"
               "  \"num_vertices\": %d,\n"
               "  \"num_edges\": %lld,\n"
               "  \"k\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"counting_allocator\": %s,\n"
               "  \"rows\": [\n",
               gen_nx, g.num_vertices(), static_cast<long long>(g.num_edges()),
               static_cast<int>(k), static_cast<unsigned long long>(seed),
               mgp::testing::counting_allocator_active() ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SRow& r = rows[i];
    std::fprintf(f,
                 "    {\"strategy\": \"%s\", \"cut\": %lld, \"levels\": %lld, "
                 "\"steady_allocs\": %llu, \"direct_seconds\": %.6f}%s\n",
                 r.name, static_cast<long long>(r.cut),
                 static_cast<long long>(r.levels),
                 static_cast<unsigned long long>(r.steady_allocs), r.seconds,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  print_banner("Figure M (extension): coarsening-strategy sweep",
               "AD-HEM in the default's quality class; n-level's deeper "
               "ladder stays allocation-free once warm");

  auto suite = load_suite(SuiteKind::kFigures, 0.05);
  const part_t k = 16;

  std::printf("\n%s %8s", pad("graph", 6).c_str(), "|V|");
  for (const StrategyCase& s : kStrategies) {
    std::printf(" | %9s %6s", s.name, "t");
  }
  std::printf("   (k = %d, direct)\n", static_cast<int>(k));

  for (const auto& ng : suite) {
    std::printf("%s %8lld", pad(ng.name, 6).c_str(),
                static_cast<long long>(ng.graph.num_vertices()));
    for (const StrategyCase& s : kStrategies) {
      Timer t;
      Rng rng(seed_from_env());
      KwayDirectConfig cfg;
      cfg.base.coarsen.strategy = s.strategy;
      const KwayResult r = kway_partition_direct(ng.graph, k, cfg, rng);
      std::printf(" | %9lld %6.2f", static_cast<long long>(r.edge_cut),
                  t.seconds());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  // ---- Pinned strategy sweep for the CI gate. ----
  // NOT scaled by MGP_BENCH_SCALE: the cuts are the gated artifact, so every
  // machine must partition the identical graph.
  const std::uint64_t seed = seed_from_env();
  const vid_t gen_nx = 60;
  const Graph g = fem2d_tri(gen_nx, gen_nx, 7);
  std::printf("\nstrategy sweep: fem2d_tri(%d)  |V|=%d  |E|=%lld  k=%d  "
              "seed=%llu\n",
              gen_nx, g.num_vertices(), static_cast<long long>(g.num_edges()),
              static_cast<int>(k), static_cast<unsigned long long>(seed));
  std::printf("%s %9s %7s %9s %8s\n", pad("strategy", 8).c_str(), "cut",
              "levels", "t", "allocs");

  std::vector<SRow> rows;
  for (const StrategyCase& s : kStrategies) {
    obs::Obs ob;
    ob.collect_report = false;  // counters only: the report allocates
    KwayDirectConfig cfg;
    cfg.base.coarsen.strategy = s.strategy;
    cfg.base.obs = &ob;
    // Fresh workspaces per strategy: the gate measures each engine's own
    // warm steady state, not buffers inherited from the previous sweep.
    // The obs registry warms its shards alongside.
    KwayDirectWorkspace dws;
    BisectWorkspace bws;
    std::vector<part_t> part;
    for (int warm = 0; warm < 2; ++warm) {
      Rng rw(seed);
      kway_partition_direct_into(g, k, cfg, rw, dws, &bws, part);
    }
    // Both warm runs were identical, so halving the counter gives the
    // per-run ladder depth; the guarded run below detaches obs because the
    // metrics shards themselves may allocate — the gated zero is the
    // pipeline's, as in figK.
    const std::int64_t levels =
        ob.metrics.current(ob.pipeline.kway_direct_levels) / 2;
    cfg.base.obs = nullptr;
    Rng rng(seed);
    mgp::testing::AllocGuard guard;
    Timer t;
    const ewt_t cut = kway_partition_direct_into(g, k, cfg, rng, dws, &bws, part);
    const double secs = t.seconds();
    const std::uint64_t allocs = guard.allocations();

    rows.push_back({s.name, cut, levels, secs, allocs});
    std::printf("%s %9lld %7lld %9.4f %8llu\n", pad(s.name, 8).c_str(),
                static_cast<long long>(cut), static_cast<long long>(levels),
                secs, static_cast<unsigned long long>(allocs));
  }

  std::string out = "BENCH_coarsening.json";
  if (const char* e = std::getenv("MGP_BENCH_COARSEN_OUT")) out = e;
  write_coarsen_json(out, g, gen_nx, k, seed, rows);
  return 0;
}
