// Reproduces Table 2: performance of the four matching schemes during
// coarsening (32-way edge-cut, coarsening time, uncoarsening time), with
// GGGP initial partitioning and BKLGR refinement fixed, as in §4.1.
//
// Expected shape (paper): no clear edge-cut winner (all within ~10%);
// RM coarsens fastest, LEM/HCM slowest (up to ~38% more than RM); HEM and
// HCM spend the least time in uncoarsening, LEM by far the most, and for
// HEM, UTime << CTime.
#include <array>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/kway.hpp"
#include "support/timer.hpp"

using namespace mgp;
using namespace mgp::bench;

int main() {
  print_banner(
      "Table 2: matching schemes (RM / HEM / LEM / HCM), 32-way partition",
      "edge-cuts within ~10-40% of each other; RM lowest CTime; HEM/HCM "
      "lowest UTime; LEM highest UTime; HEM: UTime << CTime");

  const part_t k = 32;
  auto suite = load_suite(SuiteKind::kTables, 0.3);
  const MatchingScheme schemes[] = {MatchingScheme::kRandom, MatchingScheme::kHeavyEdge,
                                    MatchingScheme::kLightEdge,
                                    MatchingScheme::kHeavyClique};

  std::printf("\n%s", pad("", 6).c_str());
  for (MatchingScheme m : schemes) {
    std::printf(" | %s", pad(to_string(m), 26).c_str());
  }
  std::printf("\n%s", pad("graph", 6).c_str());
  for (int i = 0; i < 4; ++i) std::printf(" | %8s %8s %8s", "32EC", "CTime", "UTime");
  std::printf("\n");

  // Per the paper: "UTime is the sum of the time spent in partitioning the
  // coarse graph (ITime), the time spent in refinement (RTime), and the
  // time spent in projecting the partition ... (PTime)."  The breakdown is
  // printed in a second block.
  std::vector<std::array<PhaseTimers, 4>> breakdown;
  for (const auto& ng : suite) {
    std::printf("%s", pad(ng.name, 6).c_str());
    std::array<PhaseTimers, 4> row;
    int i = 0;
    for (MatchingScheme m : schemes) {
      MultilevelConfig cfg;
      cfg.matching = m;
      cfg.initpart = InitPartScheme::kGGGP;
      cfg.refine = RefinePolicy::kBKLGR;
      Rng rng(seed_from_env());
      PhaseTimers timers;
      KwayResult r = kway_partition(ng.graph, k, cfg, rng, &timers);
      std::printf(" | %8lld %8.3f %8.3f", static_cast<long long>(r.edge_cut),
                  timers.get(PhaseTimers::kCoarsen), timers.utime());
      row[static_cast<std::size_t>(i++)] = timers;
    }
    breakdown.push_back(row);
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\nUTime breakdown (ITime + RTime + PTime):\n%s", pad("", 6).c_str());
  for (MatchingScheme m : schemes) std::printf(" | %s", pad(to_string(m), 26).c_str());
  std::printf("\n%s", pad("graph", 6).c_str());
  for (int i = 0; i < 4; ++i) std::printf(" | %8s %8s %8s", "ITime", "RTime", "PTime");
  std::printf("\n");
  for (std::size_t gi = 0; gi < suite.size(); ++gi) {
    std::printf("%s", pad(suite[gi].name, 6).c_str());
    for (const PhaseTimers& t : breakdown[gi]) {
      std::printf(" | %8.3f %8.3f %8.3f", t.get(PhaseTimers::kInitPart),
                  t.get(PhaseTimers::kRefine), t.get(PhaseTimers::kProject));
    }
    std::printf("\n");
  }
  return 0;
}
