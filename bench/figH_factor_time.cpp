// Figure-5 companion: *numeric* factorisation wall time per ordering.
//
// The paper argues with symbolic operation counts; this bench factorises
// for real (cholesky/sparse_cholesky) and reports seconds, validating that
// the op-count ratios of Figure 5 translate into wall-clock ratios — and
// that the numeric factor's nonzero count equals the symbolic prediction.
//
// Expected shape: time ratios track Figure 5's op ratios (MLND fastest on
// the big 3D graphs, MMD competitive on small/structured ones); the nnz
// column pairs are identical.
#include <cstdio>

#include "cholesky/sparse_cholesky.hpp"
#include "common.hpp"
#include "metrics/ordering_metrics.hpp"
#include "order/mmd.hpp"
#include "order/nested_dissection.hpp"
#include "support/timer.hpp"

using namespace mgp;
using namespace mgp::bench;

int main() {
  print_banner("Figure H (companion to Fig. 5): numeric factorisation time",
               "MMD/MLND time ratios track the symbolic op ratios; numeric "
               "nnz(L) == symbolic nnz(L) exactly");

  auto suite = load_suite(SuiteKind::kOrdering, 0.08);

  std::printf("\n%s %8s | %10s %10s | %10s %10s | %7s %7s | %5s\n",
              pad("graph", 6).c_str(), "|V|", "MLND s", "MMD s", "MLND nnz",
              "MMD nnz", "t-ratio", "op-ratio", "match");
  for (const auto& ng : suite) {
    SymmetricMatrix a = laplacian_matrix(ng.graph, 1.0);

    Rng rng(seed_from_env());
    MultilevelConfig cfg;
    NdOptions nd;
    std::vector<vid_t> mlnd_perm = mlnd_order(ng.graph, cfg, nd, rng);
    std::vector<vid_t> mmd_perm = mmd_order(ng.graph);

    auto run = [&](std::span<const vid_t> perm) {
      SymmetricMatrix pa = permute_matrix(a, perm);
      Timer t;
      CholeskyResult r = cholesky_factorize(pa);
      return std::tuple<double, std::int64_t, bool>(t.seconds(), r.factor.nnz(), r.ok);
    };
    auto [t_mlnd, nnz_mlnd, ok1] = run(mlnd_perm);
    auto [t_mmd, nnz_mmd, ok2] = run(mmd_perm);
    if (!ok1 || !ok2) {
      std::printf("%s factorisation failed\n", pad(ng.name, 6).c_str());
      continue;
    }
    const std::int64_t sym_mlnd = evaluate_ordering(ng.graph, mlnd_perm).nnz_factor;
    const std::int64_t sym_mmd = evaluate_ordering(ng.graph, mmd_perm).nnz_factor;
    const double op_ratio =
        static_cast<double>(evaluate_ordering(ng.graph, mmd_perm).flops) /
        static_cast<double>(evaluate_ordering(ng.graph, mlnd_perm).flops);
    const bool match = nnz_mlnd == sym_mlnd && nnz_mmd == sym_mmd;

    std::printf("%s %8lld | %10.3f %10.3f | %10lld %10lld | %7.2f %8.2f | %5s\n",
                pad(ng.name, 6).c_str(),
                static_cast<long long>(ng.graph.num_vertices()), t_mlnd, t_mmd,
                static_cast<long long>(nnz_mlnd), static_cast<long long>(nnz_mmd),
                t_mmd / t_mlnd, op_ratio, match ? "yes" : "NO");
    std::fflush(stdout);
  }
  return 0;
}
