// Reproduces Figure 2: quality of our multilevel algorithm vs MSB followed
// by Kernighan-Lin refinement (MSB-KL).
//
// Expected shape (paper): KL does improve MSB (ratios closer to 1 than in
// Figure 1), but our algorithm still produces better partitions for most
// problems.
#include "fig_common.hpp"
#include "spectral/msb.hpp"

using namespace mgp;
using namespace mgp::bench;

int main(int argc, char** argv) {
  ObsSession session(argc, argv, "fig2_vs_msbkl");
  MsbOptions msbkl;
  msbkl.kl_refine = true;
  return run_cut_ratio_figure(
      "Figure 2: our multilevel vs MSB with Kernighan-Lin (MSB-KL)",
      "ratios closer to 1 than Fig. 1, but mean still <= ~1.0",
      "MSB-KL",
      [&msbkl](const Graph& g, part_t k, Rng& rng) {
        return msb_partition(g, k, msbkl, rng);
      },
      0.05, &session);
}
