// Reproduces Figure 1: quality of our multilevel algorithm vs multilevel
// spectral bisection (MSB) for 64-, 128- and 256-way partitions.
//
// Expected shape (paper): ours better on almost all graphs (improvement up
// to 60%); where MSB wins, by < 1%; the relative difference shrinks as k
// grows.
#include "fig_common.hpp"
#include "spectral/msb.hpp"

using namespace mgp;
using namespace mgp::bench;

int main(int argc, char** argv) {
  ObsSession session(argc, argv, "fig1_vs_msb");
  MsbOptions msb;
  return run_cut_ratio_figure(
      "Figure 1: our multilevel vs multilevel spectral bisection (MSB)",
      "mean ratio < 1.0; ours wins on nearly every graph",
      "MSB",
      [&msb](const Graph& g, part_t k, Rng& rng) {
        return msb_partition(g, k, msb, rng);
      },
      0.05, &session);
}
