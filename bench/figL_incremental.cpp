// Extension bench: incremental repartitioning (src/dynamic) vs partitioning
// from scratch, swept over churn level.
//
// Expected shape: at small churn (<= 1% of edges rewired per batch) the
// warm-start path — CSR patch + frontier-restricted k-way refinement — is
// several times faster than a full multilevel run, with an edge-cut within
// a few percent of the from-scratch answer.  As churn grows the advantage
// shrinks until the policy itself falls back to scratch.
//
// The harness ping-pongs a synthesized churn batch with its exact inverse,
// so graph shapes repeat forever: the steady state is measurable and the
// counting allocator can assert that a *warm* delta cycle allocates nothing.
// Emits BENCH_incremental.json (override with MGP_BENCH_INCR_OUT), keyed by
// churn_pct:
//   * cut / cut_scratch / cut_vs_scratch — incremental and from-scratch
//     edge-cuts on the identical post-delta graph and their ratio
//     (deterministic for a pinned seed, so CI gates them at 1%);
//   * steady_allocs — heap allocations of one warm delta cycle (gated
//     exactly at zero);
//   * speedup_vs_scratch — scratch_seconds / incr_seconds (ratio-gated);
//   * incr_seconds / scratch_seconds — informational wall times.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/kway_direct.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/incremental.hpp"
#include "support/alloc_guard.hpp"
#include "support/timer.hpp"
#include "support/workspace.hpp"

using namespace mgp;
using namespace mgp::bench;

namespace {

struct ChurnRow {
  double churn_pct;
  ewt_t cut;
  ewt_t cut_scratch;
  double incr_seconds;
  double scratch_seconds;
  std::uint64_t steady_allocs;
};

void write_incr_json(const std::string& path, const Graph& g, vid_t gen_n,
                     part_t k, std::uint64_t seed,
                     const std::vector<ChurnRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"figL_incremental\",\n"
               "  \"graph\": \"circuit(%d)\",\n"
               "  \"num_vertices\": %d,\n"
               "  \"num_edges\": %lld,\n"
               "  \"k\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"counting_allocator\": %s,\n"
               "  \"rows\": [\n",
               gen_n, g.num_vertices(), static_cast<long long>(g.num_edges()),
               static_cast<int>(k), static_cast<unsigned long long>(seed),
               mgp::testing::counting_allocator_active() ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ChurnRow& r = rows[i];
    std::fprintf(f,
                 "    {\"churn_pct\": %.1f, \"cut\": %lld, "
                 "\"cut_scratch\": %lld, \"cut_vs_scratch\": %.4f, "
                 "\"speedup_vs_scratch\": %.2f, \"steady_allocs\": %llu, "
                 "\"incr_seconds\": %.6f, \"scratch_seconds\": %.6f}%s\n",
                 r.churn_pct, static_cast<long long>(r.cut),
                 static_cast<long long>(r.cut_scratch),
                 r.cut_scratch > 0 ? static_cast<double>(r.cut) /
                                         static_cast<double>(r.cut_scratch)
                                   : 1.0,
                 r.incr_seconds > 0.0 ? r.scratch_seconds / r.incr_seconds
                                      : 0.0,
                 static_cast<unsigned long long>(r.steady_allocs),
                 r.incr_seconds, r.scratch_seconds,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  print_banner(
      "Figure L (extension): incremental repartitioning vs from-scratch",
      "warm-start delta repartitioning several times faster at <= 1% churn, "
      "cut within a few percent, zero steady-state allocations");

  // Deliberately NOT scaled by MGP_BENCH_SCALE: the sweep's cuts are the
  // gated artifact, and the committed baseline only holds if every machine
  // replays the identical churn script on the identical graph.
  const std::uint64_t seed = seed_from_env();
  const vid_t gen_n = 12000;
  constexpr part_t k = 16;
  const double churn_pcts[] = {0.1, 0.5, 1.0, 2.0, 5.0};

  {
    const Graph probe = circuit(gen_n, 11);
    std::printf("\nchurn sweep: circuit(%d)  |V|=%d  |E|=%lld  k=%d  seed=%llu\n",
                gen_n, probe.num_vertices(),
                static_cast<long long>(probe.num_edges()), static_cast<int>(k),
                static_cast<unsigned long long>(seed));
  }
  std::printf("%s %9s %9s %9s %9s %9s %9s %8s\n", pad("churn%", 7).c_str(),
              "cutINC", "cutSCR", "ratio", "speedup", "tINC", "tSCR",
              "allocs");

  std::vector<ChurnRow> rows;
  for (double pct : churn_pcts) {
    Graph g = circuit(gen_n, 11);
    Graph spare;
    dynamic::LabelState state;
    dynamic::IncrementalWorkspace iws;
    BisectWorkspace bws;
    dynamic::DeltaScratch scratch;
    dynamic::DeltaApplyResult res;
    const dynamic::IncrementalConfig icfg;

    // Anchor labelling (from scratch, via the same entry point the server
    // uses), then synthesize one churn batch and its exact inverse.
    dynamic::repartition_after_delta(g, k, icfg, seed, state,
                                     dynamic::graph_fingerprint(g), {}, 0.0,
                                     iws, &bws, nullptr);
    dynamic::DeltaBatch fwd, bwd;
    {
      Rng rng(seed + 1);
      dynamic::synth_churn_batch(g, pct / 100.0, rng, fwd);
    }
    dynamic::invert_churn_batch(g, fwd, bwd);

    const auto cycle = [&](const dynamic::DeltaBatch& batch) {
      if (!dynamic::apply_delta(g, batch, scratch, spare, res).empty()) {
        std::fprintf(stderr, "synthesized batch failed to apply\n");
        std::exit(1);
      }
      std::swap(g, spare);
      dynamic::repartition_after_delta(g, k, icfg, seed, state,
                                       res.fingerprint, scratch.touched,
                                       res.churn_ratio, iws, &bws, nullptr);
    };

    // Warm-up: two full A/B cycles reach every buffer's high-water mark.
    for (int warm = 0; warm < 2; ++warm) {
      cycle(fwd);
      cycle(bwd);
    }

    // Steady state: one guarded, timed A/B pair (two delta services).
    mgp::testing::AllocGuard guard;
    Timer t;
    cycle(fwd);
    cycle(bwd);
    const double t_incr = t.seconds() / 2.0;
    const std::uint64_t allocs = guard.allocations();

    // The quality/time comparator: a full direct k-way run on the identical
    // post-delta graph (warm workspaces, so it is not paying first-call
    // allocation costs the incremental path already amortized).
    cycle(fwd);
    const ewt_t cut_incr = state.cut;
    KwayDirectConfig dcfg;
    dcfg.base = icfg.direct.base;
    KwayDirectWorkspace dws;
    std::vector<part_t> part;
    ewt_t cut_scr = 0;
    for (int warm = 0; warm < 2; ++warm) {
      Rng rw(seed);
      cut_scr = kway_partition_direct_into(g, k, dcfg, rw, dws, &bws, part);
    }
    Timer ts;
    {
      Rng r2(seed);
      cut_scr = kway_partition_direct_into(g, k, dcfg, r2, dws, &bws, part);
    }
    const double t_scr = ts.seconds();

    rows.push_back({pct, cut_incr, cut_scr, t_incr, t_scr, allocs});
    std::printf("%s %9lld %9lld %9.4f %9.2f %9.4f %9.4f %8llu\n",
                pad(std::to_string(pct).substr(0, 4), 7).c_str(),
                static_cast<long long>(cut_incr),
                static_cast<long long>(cut_scr),
                cut_scr > 0 ? static_cast<double>(cut_incr) /
                                  static_cast<double>(cut_scr)
                            : 1.0,
                t_incr > 0.0 ? t_scr / t_incr : 0.0, t_incr, t_scr,
                static_cast<unsigned long long>(allocs));
    std::fflush(stdout);
  }

  std::string out = "BENCH_incremental.json";
  if (const char* e = std::getenv("MGP_BENCH_INCR_OUT")) out = e;
  const Graph g = circuit(gen_n, 11);
  write_incr_json(out, g, gen_n, k, seed, rows);
  return 0;
}
