#!/usr/bin/env python3
"""Validate a partition vector produced by examples/partition_file -o.

Stdlib-only checks, used by the CI cli-smoke job:

  * the file has exactly one label per vertex of the companion graph
    (vertex count parsed from the METIS .graph header);
  * every label lies in [0, k);
  * every part is non-empty;
  * the partition is balanced: max part size / ceil(n / k) <= the bound
    given by --imbalance (default 1.5 — generous, because the tools balance
    by vertex *weight* with a slack proportional to the largest vertex).

Usage:
    scripts/validate_partition.py PART_FILE GRAPH_FILE K [--imbalance=X]

Exit code 0 when the partition validates, 1 with messages otherwise.
"""

import math
import sys
from pathlib import Path


def read_graph_header(path):
    """Returns (num_vertices, num_edges) from a METIS .graph header."""
    with open(path) as f:
        for line in f:
            line = line.split("%")[0].strip()
            if line:
                fields = line.split()
                return int(fields[0]), int(fields[1])
    raise ValueError(f"{path}: no header line")


def main(argv):
    if len(argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    part_path, graph_path = Path(argv[1]), Path(argv[2])
    k = int(argv[3])
    max_imbalance = 1.5
    for arg in argv[4:]:
        if arg.startswith("--imbalance="):
            max_imbalance = float(arg.split("=", 1)[1])
        else:
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2

    n, _ = read_graph_header(graph_path)
    labels = []
    for i, line in enumerate(part_path.read_text().split()):
        labels.append(int(line))

    errors = []
    if len(labels) != n:
        errors.append(f"{len(labels)} labels for {n} vertices")
    sizes = [0] * k
    for i, p in enumerate(labels):
        if 0 <= p < k:
            sizes[p] += 1
        else:
            errors.append(f"vertex {i}: label {p} outside [0, {k})")
            if len(errors) > 10:
                break
    if not errors:
        for p, size in enumerate(sizes):
            if size == 0:
                errors.append(f"part {p} is empty")
        ideal = math.ceil(n / k)
        imbalance = max(sizes) / ideal
        if imbalance > max_imbalance:
            errors.append(
                f"imbalance {imbalance:.3f} > bound {max_imbalance} "
                f"(part sizes {sizes})")

    if errors:
        for e in errors:
            print(f"FAIL {part_path}: {e}", file=sys.stderr)
        return 1
    print(f"OK {part_path}: n={n}, k={k}, part sizes {sizes}, "
          f"imbalance {max(sizes) / math.ceil(n / k):.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
