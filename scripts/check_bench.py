#!/usr/bin/env python3
"""Compare a bench JSON artifact against its committed baseline.

Stdlib-only gate used by the perf workflow.  Two input formats are
auto-detected:

  * google-benchmark JSON (micro_kernels --benchmark_out): entries under
    "benchmarks", keyed by "name", with optional "counters";
  * the repo's own row JSON (bench_parallel, figK_kway_direct,
    figL_incremental, figM_coarsening): entries under "rows", keyed by
    "threads" (thread sweeps), "churn_pct" (churn sweeps), "strategy"
    (coarsening-engine sweeps) or "k" (k sweeps), plus an optional
    "sequential" baseline object.

What is gated (machine-independent by design, so a laptop-generated
baseline holds on CI runners):

  * quality metrics — "cut", "final_cut", "cut_vs_seq", "cut_rb",
    "cut_vs_rb", "cut_scratch", "cut_vs_scratch" — within
    --cut-tolerance (default 1%) of the baseline; the partitions are
    deterministic for a pinned seed/scale/threads environment, so these
    should normally match exactly;
  * counter metrics — "steady_allocs", "allocations" — a baseline of zero
    must stay exactly zero (the zero-allocation guarantees are exact);
    nonzero baselines get a loose 3x bound, because absolute allocation
    counts track the standard library's small-buffer thresholds (which vary
    across toolchains) while still catching a lost workspace-reuse path,
    which inflates counts by orders of magnitude;
  * ratio metrics — "speedup_vs_1t", "speedup_vs_scratch" — no more than
    --tolerance below the baseline's ratio.

Absolute wall-clock fields (real_time, cpu_time, *_seconds) are reported
but NOT gated by default: they track the machine, not the code.  Pass
--gate-times to include them (useful when baseline and run share hardware).

Usage:
    scripts/check_bench.py CURRENT.json BASELINE.json
        [--tolerance=0.15] [--cut-tolerance=0.01] [--gate-times]

Exit code 0 when every gated metric passes, 1 with per-metric messages
otherwise (2 for usage/format errors).  Entries present in only one file
are reported as failures: a vanished benchmark is a silent regression.
"""

import json
import sys
from pathlib import Path

CUT_METRICS = ("cut", "final_cut", "cut_vs_seq", "cut_rb", "cut_vs_rb",
               "cut_scratch", "cut_vs_scratch")
COUNTER_METRICS = ("steady_allocs", "allocations")
ALLOC_FACTOR = 3.0  # bound for nonzero allocation-count baselines
RATIO_METRICS = ("speedup_vs_1t", "speedup_vs_scratch")
TIME_METRICS = ("real_time", "cpu_time", "coarsen_seconds", "kway_seconds",
                "rb_seconds", "direct_seconds", "incr_seconds",
                "scratch_seconds")


def load_entries(path):
    """Returns (format_name, {key: {metric: value}}) for either format."""
    data = json.loads(Path(path).read_text())
    entries = {}
    if "benchmarks" in data:
        for b in data["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            metrics = {}
            for m in TIME_METRICS:
                if m in b:
                    metrics[m] = b[m]
            for name, value in b.items():
                if name in CUT_METRICS + COUNTER_METRICS + RATIO_METRICS:
                    metrics[name] = value
            # google-benchmark puts user counters at the top level of each
            # entry in recent versions and under "counters" in older ones.
            for name, value in b.get("counters", {}).items():
                metrics[name] = value
            entries[b["name"]] = metrics
        return "google-benchmark", entries
    if "rows" in data:
        for row in data["rows"]:
            # bench_parallel sweeps thread counts, figL_incremental sweeps
            # churn levels, figM_coarsening sweeps coarsening strategies,
            # figK_kway_direct sweeps k.
            if "threads" in row:
                axis = "threads"
            elif "churn_pct" in row:
                axis = "churn_pct"
            elif "strategy" in row:
                axis = "strategy"
            else:
                axis = "k"
            key = f"{axis}={row[axis]}"
            entries[key] = {k: v for k, v in row.items() if k != axis}
        if "sequential" in data:
            entries["sequential"] = dict(data["sequential"])
        return data.get("bench", "rows"), entries
    raise ValueError(f"{path}: neither 'benchmarks' nor 'rows' present")


def check_entry(key, cur, base, tol, cut_tol, gate_times, errors, infos):
    for metric in sorted(set(cur) | set(base)):
        if metric not in base:
            continue  # new metric: nothing to compare against
        if metric not in cur:
            errors.append(f"{key}: metric {metric!r} missing from current run")
            continue
        c, b = cur[metric], base[metric]
        if not isinstance(c, (int, float)) or not isinstance(b, (int, float)):
            continue
        if metric in CUT_METRICS:
            bound = abs(b) * cut_tol
            if abs(c - b) > bound:
                errors.append(
                    f"{key}.{metric}: {c} vs baseline {b} "
                    f"(tolerance {cut_tol:.0%})")
        elif metric in COUNTER_METRICS:
            if b == 0:
                if c != 0:
                    errors.append(
                        f"{key}.{metric}: {c} allocations, baseline is "
                        f"exactly 0")
            elif c > b * ALLOC_FACTOR:
                errors.append(
                    f"{key}.{metric}: {c} vs baseline {b} "
                    f"(more than {ALLOC_FACTOR:g}x)")
        elif metric in RATIO_METRICS:
            if c < b * (1 - tol):
                errors.append(
                    f"{key}.{metric}: {c:.3f} vs baseline {b:.3f} "
                    f"(-{(1 - c / b):.0%} > {tol:.0%})")
        elif metric in TIME_METRICS:
            if b > 0:
                delta = c / b - 1
                line = f"{key}.{metric}: {c:.4g} vs baseline {b:.4g} ({delta:+.0%})"
                if gate_times and delta > tol:
                    errors.append(line + f" > {tol:.0%}")
                else:
                    infos.append(line)


def main(argv):
    paths, tol, cut_tol, gate_times = [], 0.15, 0.01, False
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tol = float(arg.split("=", 1)[1])
        elif arg.startswith("--cut-tolerance="):
            cut_tol = float(arg.split("=", 1)[1])
        elif arg == "--gate-times":
            gate_times = True
        elif arg.startswith("-"):
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        cur_fmt, current = load_entries(paths[0])
        base_fmt, baseline = load_entries(paths[1])
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if cur_fmt != base_fmt:
        print(f"error: format mismatch: {paths[0]} is {cur_fmt}, "
              f"{paths[1]} is {base_fmt}", file=sys.stderr)
        return 2

    errors, infos = [], []
    for key in sorted(baseline):
        if key not in current:
            errors.append(f"{key}: present in baseline, missing from current run")
            continue
        check_entry(key, current[key], baseline[key], tol, cut_tol,
                    gate_times, errors, infos)

    for line in infos:
        print(f"  info {line}")
    if errors:
        for e in errors:
            print(f"FAIL {paths[0]}: {e}", file=sys.stderr)
        return 1
    print(f"OK {paths[0]}: {len(baseline)} entries within tolerance of "
          f"{paths[1]} (format: {cur_fmt})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
