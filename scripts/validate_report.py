#!/usr/bin/env python3
"""Validate a --report JSON file against schema/run_report.schema.json.

Stdlib-only (no jsonschema dependency), implementing exactly the subset of
JSON Schema the checked-in schema uses:

    type, properties, required, items, minimum, maximum, const, enum,
    additionalProperties (boolean or sub-schema)

Beyond the schema, a handful of cross-field invariants that a type system
cannot express are checked directly (weight conservation across levels,
utime_s = itime_s + rtime_s + ptime_s, initial_cut present among the
candidate cuts, histogram counts summing to count).

Usage:
    scripts/validate_report.py REPORT.json [SCHEMA.json]

Exit code 0 when the report validates, 1 with per-path error messages
otherwise.
"""

import json
import math
import sys
from pathlib import Path


def _type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        # bool is an int subclass in Python; JSON booleans are not integers.
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "null":
        return value is None
    raise ValueError(f"unsupported schema type: {expected}")


def validate(value, schema, path, errors):
    """Appends 'path: message' strings to `errors` for every violation."""
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {value!r}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']!r}")
        return
    if "type" in schema and not _type_ok(value, schema["type"]):
        errors.append(f"{path}: expected {schema['type']}, got {type(value).__name__}")
        return

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum {schema['maximum']}")

    if isinstance(value, dict):
        props = schema.get("properties", {})
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key {req!r}")
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
        extra = schema.get("additionalProperties", True)
        for key in value:
            if key in props:
                continue
            if extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                validate(value[key], extra, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def check_invariants(report, errors):
    """Cross-field consistency the schema's types cannot express."""
    pt = report.get("phase_times", {})
    if all(k in pt for k in ("itime_s", "rtime_s", "ptime_s", "utime_s")):
        expect = pt["itime_s"] + pt["rtime_s"] + pt["ptime_s"]
        if not math.isclose(pt["utime_s"], expect, rel_tol=1e-9, abs_tol=1e-9):
            errors.append(
                f"$.phase_times: utime_s={pt['utime_s']} != "
                f"itime_s+rtime_s+ptime_s={expect}")

    for bi, b in enumerate(report.get("bisections", [])):
        bp = f"$.bisections[{bi}]"
        cuts = b.get("initpart_candidate_cuts", [])
        if cuts and b.get("initial_cut") not in cuts:
            errors.append(
                f"{bp}: initial_cut {b.get('initial_cut')} not among "
                f"candidate cuts {cuts}")
        levels = b.get("levels", [])
        if levels:
            if b.get("num_levels") != len(levels) - 1:
                errors.append(
                    f"{bp}: num_levels={b.get('num_levels')} but "
                    f"{len(levels)} level entries (expected num_levels+1)")
            weights = {lv.get("total_vertex_weight") for lv in levels}
            if len(weights) > 1:
                errors.append(
                    f"{bp}: vertex weight not conserved across levels: "
                    f"{sorted(weights)}")
            if levels[0].get("vertices") != b.get("n"):
                errors.append(
                    f"{bp}: finest level has {levels[0].get('vertices')} "
                    f"vertices, bisection says n={b.get('n')}")
            for li, lv in enumerate(levels[:-1]):
                nxt = levels[li + 1]
                if nxt.get("vertices", 0) >= lv.get("vertices", 0):
                    errors.append(
                        f"{bp}.levels[{li + 1}]: coarser level did not shrink "
                        f"({lv.get('vertices')} -> {nxt.get('vertices')})")

    hists = report.get("metrics", {}).get("histograms", {})
    for name, h in hists.items():
        counts = h.get("counts", [])
        bounds = h.get("upper_bounds", [])
        if len(counts) != len(bounds) + 1:
            errors.append(
                f"$.metrics.histograms.{name}: {len(counts)} counts for "
                f"{len(bounds)} bounds (expected bounds+1)")
        if sum(counts) != h.get("count"):
            errors.append(
                f"$.metrics.histograms.{name}: bucket counts sum to "
                f"{sum(counts)}, count says {h.get('count')}")
        if bounds != sorted(bounds):
            errors.append(
                f"$.metrics.histograms.{name}: upper_bounds not sorted")


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    report_path = Path(argv[1])
    schema_path = (Path(argv[2]) if len(argv) == 3 else
                   Path(__file__).resolve().parent.parent /
                   "schema" / "run_report.schema.json")

    schema = json.loads(schema_path.read_text())
    try:
        report = json.loads(report_path.read_text())
    except json.JSONDecodeError as e:
        print(f"{report_path}: not valid JSON: {e}", file=sys.stderr)
        return 1

    errors = []
    validate(report, schema, "$", errors)
    if not errors:  # invariants assume a structurally valid report
        check_invariants(report, errors)

    if errors:
        for e in errors:
            print(f"FAIL {report_path}: {e}", file=sys.stderr)
        return 1
    n_bis = len(report.get("bisections", []))
    print(f"OK {report_path}: version {report.get('version')}, "
          f"tool {report.get('tool')!r}, {n_bis} bisections")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
