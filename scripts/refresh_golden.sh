#!/usr/bin/env bash
# Regenerate tests/golden/golden_cuts.txt from the corpus definition in
# tests/golden/golden_corpus.hpp.  Run after an intentional behavioural
# change, then review and commit the diff like any other code change.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build --target mgp_golden_refresh -j >/dev/null
./build/tests/mgp_golden_refresh tests/golden/golden_cuts.txt
echo "refreshed tests/golden/golden_cuts.txt"
